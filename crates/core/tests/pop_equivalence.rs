//! Property suite for the compiled-population contract: every path that
//! routes through [`qpv_core::CompiledPopulation`] — the one-pass
//! sequential audit, the counts-only fast path, the batched multi-policy
//! sweep, and the pooled-scratch parallel audit — produces results
//! **bitwise identical** to the string-resolving reference path
//! ([`qpv_core::AuditEngine::run_reference`]), flat and lattice, on
//! arbitrary populations.
//!
//! The generators are shared in shape with `plan_equivalence.rs`:
//! duplicate `(attribute, purpose)` preference tuples, purposes only the
//! lattice knows, purposes nobody stated, attributes the table doesn't
//! store, duplicate provider ids, and one ~100×-skewed provider.

use std::num::NonZeroUsize;

use proptest::prelude::*;

use qpv_core::sensitivity::{AttributeSensitivities, DatumSensitivity};
use qpv_core::{AuditEngine, CompiledPopulation, ProviderProfile};
use qpv_policy::{HousePolicy, ProviderId};
use qpv_taxonomy::{PrivacyPoint, PrivacyTuple, PurposeLattice};

fn pt(v: u32, g: u32, r: u32) -> PrivacyPoint {
    PrivacyPoint::from_raw(v, g, r)
}

/// A structurally varied population derived from a single seed, stressing
/// every resolution rule the population compiles away.
fn population(n: usize, seed: u64) -> Vec<ProviderProfile> {
    (0..n as u64)
        .map(|i| {
            let x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(seed);
            let mut p = ProviderProfile::new(ProviderId(i), 10 + (x % 140));
            p.preferences.add(
                "weight",
                PrivacyTuple::from_point("pr", pt(1 + (x % 5) as u32, 2, 20 + (x % 30) as u32)),
            );
            if x % 4 == 0 {
                p.preferences.add(
                    "weight",
                    PrivacyTuple::from_point("pr", pt(4, 1 + (x % 4) as u32, 10)),
                );
            }
            if x % 3 != 0 {
                p.preferences.add(
                    "age",
                    PrivacyTuple::from_point(
                        "research",
                        pt(2 + (x % 3) as u32, 1 + (x % 4) as u32, 45),
                    ),
                );
            }
            if x % 5 == 0 {
                p.preferences
                    .add("weight", PrivacyTuple::from_point("ops", pt(5, 5, 90)));
            }
            if x % 7 == 0 {
                p.preferences
                    .add("weight", PrivacyTuple::from_point("mystery", pt(9, 9, 9)));
                p.preferences
                    .add("shoe_size", PrivacyTuple::from_point("pr", pt(9, 9, 9)));
            }
            p.sensitivities.insert(
                "weight".into(),
                DatumSensitivity::new(1 + (x % 6) as u32, 1, 1 + (x % 3) as u32, 2),
            );
            if x % 2 == 0 {
                p.sensitivities
                    .insert("age".into(), DatumSensitivity::new(2, 1, 1, 1));
            }
            p
        })
        .collect()
}

/// Blow up one provider's preference list to ~100× the average.
fn skew(profiles: &mut [ProviderProfile], victim: usize) {
    for i in 0..600u32 {
        profiles[victim].preferences.add(
            "weight",
            PrivacyTuple::from_point("pr", pt(1 + (i % 5), 2, 20 + (i % 30))),
        );
    }
}

fn weights() -> AttributeSensitivities {
    let mut w = AttributeSensitivities::new();
    w.set("weight", 4);
    w.set("age", 2);
    w
}

fn policy(level: u32) -> HousePolicy {
    let mut b = HousePolicy::builder("h").tuple(
        "weight",
        PrivacyTuple::from_point("pr", pt(level, 3, 30 + level)),
    );
    if level.is_multiple_of(2) {
        b = b.tuple(
            "age",
            PrivacyTuple::from_point("research", pt(2 + level / 3, 2, 60)),
        );
    }
    if level >= 5 {
        b = b.tuple("weight", PrivacyTuple::from_point("billing", pt(3, 3, 40)));
    }
    if level >= 7 {
        b = b.tuple("weight", PrivacyTuple::from_point("ads", pt(3, 3, 365)));
    }
    b.build()
}

/// billing ⊑ pr ⊑ ops; research ⊑ ops.
fn lattice() -> PurposeLattice {
    let mut l = PurposeLattice::new();
    l.add_edge("billing", "pr").unwrap();
    l.add_edge("pr", "ops").unwrap();
    l.add_edge("research", "ops").unwrap();
    l
}

fn engine(hp: &HousePolicy) -> AuditEngine {
    AuditEngine::new(hp.clone(), ["weight", "age"], weights())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// One compiled pass == reference, flat and lattice, with the counts
    /// fast path agreeing on every aggregate.
    #[test]
    fn compiled_population_equals_reference(
        seed in 0u64..1_000_000,
        n in 1usize..120,
        level in 0u32..10,
        with_lattice in 0u32..2,
    ) {
        let profiles = population(n, seed);
        let mut eng = engine(&policy(level));
        if with_lattice == 1 {
            eng = eng.with_lattice(lattice());
        }
        let pop = CompiledPopulation::from_profiles(&profiles);
        let reference = eng.run_reference(&profiles);
        prop_assert_eq!(&eng.audit_compiled(&pop), &reference);
        let counts = eng.counts(&pop);
        prop_assert_eq!(counts.total_violations, reference.total_violations);
        prop_assert_eq!(counts.p_violation(), reference.p_violation());
        prop_assert_eq!(counts.p_default(), reference.p_default());
        prop_assert_eq!(counts.remaining(), reference.remaining());
    }

    /// One compile + K passes == K independent reference audits.
    #[test]
    fn audit_many_policies_equals_reference_per_policy(
        seed in 0u64..1_000_000,
        n in 1usize..80,
        levels in proptest::collection::vec(0u32..10, 1..5),
        with_lattice in 0u32..2,
    ) {
        let profiles = population(n, seed);
        let mut eng = engine(&policy(0));
        if with_lattice == 1 {
            eng = eng.with_lattice(lattice());
        }
        let pop = CompiledPopulation::from_profiles(&profiles);
        let policies: Vec<HousePolicy> = levels.iter().map(|&l| policy(l)).collect();
        let outcomes = eng.audit_many_policies(&pop, &policies);
        prop_assert_eq!(outcomes.len(), policies.len());
        for (outcome, hp) in outcomes.iter().zip(&policies) {
            let mut one = engine(hp);
            if with_lattice == 1 {
                one = one.with_lattice(lattice());
            }
            let reference = one.run_reference(&profiles);
            prop_assert_eq!(outcome.total_violations, reference.total_violations);
            prop_assert_eq!(outcome.p_violation(), reference.p_violation());
            prop_assert_eq!(outcome.p_default(), reference.p_default());
            prop_assert_eq!(outcome.population, profiles.len());
        }
    }

    /// The pooled-scratch parallel path over one shared population equals
    /// the reference for every thread count, including under skew.
    #[test]
    fn parallel_compiled_population_equals_reference(
        seed in 0u64..1_000_000,
        n in 300usize..600,
        level in 0u32..10,
        with_lattice in 0u32..2,
    ) {
        let mut profiles = population(n, seed);
        skew(&mut profiles, n / 2);
        let mut eng = engine(&policy(level));
        if with_lattice == 1 {
            eng = eng.with_lattice(lattice());
        }
        let pop = CompiledPopulation::from_profiles(&profiles);
        let reference = eng.run_reference(&profiles);
        for threads in [1usize, 2, 4, 8] {
            let parallel = eng
                .par_audit_compiled(&pop, NonZeroUsize::new(threads).unwrap())
                .unwrap();
            prop_assert_eq!(&parallel, &reference, "{} threads", threads);
        }
    }
}

/// A segment-clustered population: preference/sensitivity content drawn
/// from a pool of `k` templates (the [`population`] generator doubles as
/// the template mint), thresholds individual per provider — the shape
/// the packed unique-row dedup is built for.
fn clustered_population(n: usize, k: usize, seed: u64) -> Vec<ProviderProfile> {
    let templates = population(k, seed);
    (0..n as u64)
        .map(|i| {
            let x = i.wrapping_mul(0xD1B5_4A32_D192_ED03).wrapping_add(seed);
            let mut p = templates[(x % k as u64) as usize].clone();
            p.preferences.provider = ProviderId(i);
            p.threshold = 5 + (x % 200);
            p
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random segment-clustered mixes: the packed counts pass (which
    /// scores each unique row once and aggregates by multiplicity) equals
    /// the reference on every aggregate — including the exact violated /
    /// defaulted counts — flat and lattice, and the dedup actually bites.
    #[test]
    fn clustered_mixes_packed_counts_equal_reference(
        seed in 0u64..1_000_000,
        n in 50usize..300,
        k in 1usize..8,
        level in 0u32..10,
        with_lattice in 0u32..2,
    ) {
        let profiles = clustered_population(n, k, seed);
        let mut eng = engine(&policy(level));
        if with_lattice == 1 {
            eng = eng.with_lattice(lattice());
        }
        let pop = CompiledPopulation::from_profiles(&profiles);
        pop.debug_validate();
        prop_assert!(pop.unique_row_count() <= k, "≤ k unique rows");
        prop_assert!(
            pop.dedup_ratio() >= n as f64 / k as f64 - 1e-9,
            "dedup ratio {} at n={} k={}", pop.dedup_ratio(), n, k
        );
        let reference = eng.run_reference(&profiles);
        prop_assert_eq!(&eng.audit_compiled(&pop), &reference);
        let counts = eng.counts(&pop);
        prop_assert_eq!(counts.total_violations, reference.total_violations);
        prop_assert_eq!(
            counts.violated,
            reference.providers.iter().filter(|p| p.violated).count()
        );
        prop_assert_eq!(
            counts.defaulted,
            reference.providers.iter().filter(|p| p.defaulted).count()
        );
        prop_assert_eq!(counts.population, n);
    }

    /// The K-policy sweep over a clustered population (one packed scratch
    /// shared across passes) equals per-policy reference audits.
    #[test]
    fn clustered_mixes_policy_sweep_equals_reference(
        seed in 0u64..1_000_000,
        n in 50usize..200,
        k in 1usize..6,
        levels in proptest::collection::vec(0u32..10, 1..5),
        with_lattice in 0u32..2,
    ) {
        let profiles = clustered_population(n, k, seed);
        let mut eng = engine(&policy(0));
        if with_lattice == 1 {
            eng = eng.with_lattice(lattice());
        }
        let pop = CompiledPopulation::from_profiles(&profiles);
        let policies: Vec<HousePolicy> = levels.iter().map(|&l| policy(l)).collect();
        let outcomes = eng.audit_many_policies(&pop, &policies);
        for (outcome, hp) in outcomes.iter().zip(&policies) {
            let mut one = engine(hp);
            if with_lattice == 1 {
                one = one.with_lattice(lattice());
            }
            let reference = one.run_reference(&profiles);
            prop_assert_eq!(outcome.total_violations, reference.total_violations);
            prop_assert_eq!(
                outcome.violated,
                reference.providers.iter().filter(|p| p.violated).count()
            );
            prop_assert_eq!(
                outcome.defaulted,
                reference.providers.iter().filter(|p| p.defaulted).count()
            );
        }
    }
}

/// Duplicate provider ids: preferences stay per-occurrence while datums and
/// thresholds resolve through the merged, last-wins view — exactly like the
/// assembled reference structures.
#[test]
fn duplicate_provider_ids_match_reference() {
    let mut profiles = population(40, 77);
    let mut dup = ProviderProfile::new(ProviderId(3), 9999);
    dup.preferences
        .add("weight", PrivacyTuple::from_point("pr", pt(1, 1, 1)));
    dup.sensitivities
        .insert("weight".into(), DatumSensitivity::new(6, 2, 3, 1));
    dup.sensitivities
        .insert("age".into(), DatumSensitivity::new(5, 1, 1, 4));
    profiles.push(dup);
    for with_lattice in [false, true] {
        let mut eng = engine(&policy(6));
        if with_lattice {
            eng = eng.with_lattice(lattice());
        }
        let pop = CompiledPopulation::from_profiles(&profiles);
        let reference = eng.run_reference(&profiles);
        assert_eq!(
            eng.audit_compiled(&pop),
            reference,
            "lattice={with_lattice}"
        );
        let counts = eng.counts(&pop);
        assert_eq!(counts.total_violations, reference.total_violations);
        assert_eq!(counts.p_default(), reference.p_default());
    }
}

/// Deterministic skew-stress: the parallel compiled-population report must
/// be **byte-identical** (serialized JSON) to the sequential one for every
/// thread count.
#[test]
fn skewed_parallel_report_is_byte_identical() {
    let mut profiles = population(500, 1234);
    skew(&mut profiles, 250);
    for with_lattice in [false, true] {
        let mut eng = engine(&policy(6));
        if with_lattice {
            eng = eng.with_lattice(lattice());
        }
        let pop = CompiledPopulation::from_profiles(&profiles);
        let sequential = eng.audit_compiled(&pop);
        assert_eq!(
            sequential,
            eng.run_reference(&profiles),
            "lattice={with_lattice}"
        );
        let seq_json = serde_json::to_string(&sequential).unwrap();
        for threads in [2usize, 3, 8] {
            let parallel = eng
                .par_audit_compiled(&pop, NonZeroUsize::new(threads).unwrap())
                .unwrap();
            assert_eq!(
                serde_json::to_string(&parallel).unwrap(),
                seq_json,
                "lattice={with_lattice}, {threads} threads"
            );
        }
    }
}

/// Saturating magnitudes: policy points, attribute weights, and datum
/// sensitivities near `u32::MAX` push the Eq. 14 severity terms past
/// `u64::MAX`, so the packed sweep's saturation precheck must reject the
/// factored fast path and the exact fallback must replay the reference's
/// `saturating_mul`/`saturating_add` chain — flat and lattice, full
/// audits and counts.
#[test]
fn saturating_magnitudes_force_fallback_and_match_reference() {
    let big = u32::MAX - 3;
    let mut profiles = population(60, 4242);
    // Maximal datum sensitivities on some providers so the per-term
    // product `(diff·w)·(value·along)` genuinely clips at `u64::MAX`,
    // rather than merely tripping the pessimistic precheck.
    for (i, p) in profiles.iter_mut().enumerate() {
        if i % 3 == 0 {
            p.sensitivities.insert(
                "weight".into(),
                DatumSensitivity::new(big, big, 1 + (i as u32 % 7), big),
            );
        }
    }
    let hp = HousePolicy::builder("h")
        .tuple("weight", PrivacyTuple::from_point("pr", pt(big, big, big)))
        .tuple("age", PrivacyTuple::from_point("research", pt(7, big, 60)))
        .build();
    let mut w = AttributeSensitivities::new();
    w.set("weight", big);
    w.set("age", 3);
    for with_lattice in [false, true] {
        let mut eng = AuditEngine::new(hp.clone(), ["weight", "age"], w.clone());
        if with_lattice {
            eng = eng.with_lattice(lattice());
        }
        let pop = CompiledPopulation::from_profiles(&profiles);
        pop.debug_validate();
        let reference = eng.run_reference(&profiles);
        assert!(
            reference.providers.iter().any(|p| p.score == u64::MAX),
            "expected genuine chain saturation, lattice={with_lattice}"
        );
        assert_eq!(
            eng.audit_compiled(&pop),
            reference,
            "lattice={with_lattice}"
        );
        let counts = eng.counts(&pop);
        assert_eq!(counts.total_violations, reference.total_violations);
        assert_eq!(
            counts.violated,
            reference.providers.iter().filter(|p| p.violated).count()
        );
        assert_eq!(
            counts.defaulted,
            reference.providers.iter().filter(|p| p.defaulted).count()
        );
        assert_eq!(counts.population, profiles.len());
    }
}

/// A population scanned straight out of a `Ppdb` audits byte-identically
/// to one compiled from materialized profiles.
#[test]
fn ppdb_scan_population_matches_profile_compilation() {
    use qpv_core::{Ppdb, PpdbConfig};
    use qpv_reldb::db::Database;
    use qpv_reldb::row::Row;
    use qpv_reldb::schema::SchemaBuilder;
    use qpv_reldb::types::DataType;
    use qpv_reldb::value::Value;

    let schema = SchemaBuilder::new()
        .column("provider_id", DataType::Int)
        .nullable_column("weight", DataType::Int)
        .nullable_column("age", DataType::Int)
        .build()
        .unwrap();
    let mut ppdb = Ppdb::create(
        Database::in_memory(),
        PpdbConfig::new("people", "provider_id"),
        schema,
    )
    .unwrap();
    for profile in population(30, 99) {
        let id = profile.id().0;
        ppdb.register_provider(
            &profile,
            Row::from_values([Value::Int(id as i64), Value::Int(70), Value::Int(30)]),
        )
        .unwrap();
    }
    let eng = engine(&policy(6));
    let scanned = ppdb.compiled_population().unwrap();
    let materialized = CompiledPopulation::from_profiles(&ppdb.all_profiles().unwrap());
    assert_eq!(
        serde_json::to_string(&eng.audit_compiled(&scanned)).unwrap(),
        serde_json::to_string(&eng.audit_compiled(&materialized)).unwrap()
    );
}
