//! Privacy tuples: points in the four-dimensional privacy space.
//!
//! A [`PrivacyTuple`] is the paper's `p ∈ P = Pr × V × G × R` (Equation 1).
//! Because purpose is categorical while the other three dimensions are
//! ordered, the ordered part is factored out as a [`PrivacyPoint`] — the
//! coordinates in `(V, G, R)` space on which all geometric comparisons
//! (dominance, bounding, per-dimension exceedance) operate.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::dimension::{Dim, Level};
use crate::granularity::GranularityLevel;
use crate::purpose::Purpose;
use crate::retention::RetentionLevel;
use crate::visibility::VisibilityLevel;

/// Coordinates in the ordered `(visibility, granularity, retention)` space.
///
/// The componentwise partial order on points is the backbone of the violation
/// model: a preference point `p` "bounds" a policy point `P` iff `P ≤ p` on
/// every ordered dimension (the box containment of the paper's Figure 1).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize, PartialOrd, Ord,
)]
pub struct PrivacyPoint {
    /// Who may access the datum.
    pub visibility: VisibilityLevel,
    /// How precisely the datum is revealed.
    pub granularity: GranularityLevel,
    /// How long the datum is retained.
    pub retention: RetentionLevel,
}

impl PrivacyPoint {
    /// The origin `⟨0, 0, 0⟩`: reveal nothing, to no one, for no time.
    ///
    /// Definition 1 assigns this point as the *implicit preference* for any
    /// purpose the provider did not mention.
    pub const ZERO: PrivacyPoint = PrivacyPoint {
        visibility: VisibilityLevel::NONE,
        granularity: GranularityLevel::NONE,
        retention: RetentionLevel::NONE,
    };

    /// Construct a point from its three coordinates.
    pub const fn new(
        visibility: VisibilityLevel,
        granularity: GranularityLevel,
        retention: RetentionLevel,
    ) -> PrivacyPoint {
        PrivacyPoint {
            visibility,
            granularity,
            retention,
        }
    }

    /// Construct a point from raw order values `(v, g, r)`.
    pub fn from_raw(v: u32, g: u32, r: u32) -> PrivacyPoint {
        PrivacyPoint {
            visibility: VisibilityLevel::from_raw(v),
            granularity: GranularityLevel::from_raw(g),
            retention: RetentionLevel::from_raw(r),
        }
    }

    /// The raw order value of the given ordered dimension — the paper's
    /// `p[dim]` notation.
    pub fn get(&self, dim: Dim) -> u32 {
        match dim {
            Dim::Visibility => self.visibility.raw(),
            Dim::Granularity => self.granularity.raw(),
            Dim::Retention => self.retention.raw(),
        }
    }

    /// Replace the given ordered dimension with a raw order value.
    pub fn with(&self, dim: Dim, raw: u32) -> PrivacyPoint {
        let mut out = *self;
        match dim {
            Dim::Visibility => out.visibility = VisibilityLevel::from_raw(raw),
            Dim::Granularity => out.granularity = GranularityLevel::from_raw(raw),
            Dim::Retention => out.retention = RetentionLevel::from_raw(raw),
        }
        out
    }

    /// Componentwise `≤`: `self` is within the box bounded by `bound`.
    ///
    /// This is Figure 1(a): the policy box is completely contained in the
    /// preference box.
    pub fn bounded_by(&self, bound: &PrivacyPoint) -> bool {
        Dim::ALL.iter().all(|&d| self.get(d) <= bound.get(d))
    }

    /// Componentwise `≥` with at least one strict: `self` strictly dominates
    /// `other` (is at least as exposed everywhere and more exposed
    /// somewhere).
    pub fn dominates(&self, other: &PrivacyPoint) -> bool {
        let ge = Dim::ALL.iter().all(|&d| self.get(d) >= other.get(d));
        ge && *self != *other
    }

    /// The dimensions on which `policy` exceeds `self` (Definition 1's
    /// existential test, reported per dimension).
    pub fn exceeded_dims(&self, policy: &PrivacyPoint) -> Vec<Dim> {
        Dim::ALL
            .iter()
            .copied()
            .filter(|&d| policy.get(d) > self.get(d))
            .collect()
    }

    /// Per-dimension exceedance `diff(p[dim], P[dim])` of Equation 12, as a
    /// `(dim, amount)` triple with zeros retained.
    pub fn exceedance(&self, policy: &PrivacyPoint) -> [(Dim, u32); 3] {
        [
            (
                Dim::Visibility,
                self.visibility.exceedance(policy.visibility),
            ),
            (
                Dim::Granularity,
                self.granularity.exceedance(policy.granularity),
            ),
            (Dim::Retention, self.retention.exceedance(policy.retention)),
        ]
    }

    /// The componentwise maximum of two points (the join in the product
    /// order).
    pub fn join(&self, other: &PrivacyPoint) -> PrivacyPoint {
        PrivacyPoint::from_raw(
            self.get(Dim::Visibility).max(other.get(Dim::Visibility)),
            self.get(Dim::Granularity).max(other.get(Dim::Granularity)),
            self.get(Dim::Retention).max(other.get(Dim::Retention)),
        )
    }

    /// The componentwise minimum of two points (the meet in the product
    /// order).
    pub fn meet(&self, other: &PrivacyPoint) -> PrivacyPoint {
        PrivacyPoint::from_raw(
            self.get(Dim::Visibility).min(other.get(Dim::Visibility)),
            self.get(Dim::Granularity).min(other.get(Dim::Granularity)),
            self.get(Dim::Retention).min(other.get(Dim::Retention)),
        )
    }
}

impl fmt::Display for PrivacyPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "⟨{}, {}, {}⟩",
            self.visibility, self.granularity, self.retention
        )
    }
}

/// A full privacy tuple `⟨purpose, visibility, granularity, retention⟩`.
///
/// House policies attach these to attributes; providers attach them to the
/// data they supply. Tuples with different purposes are incomparable
/// (Equation 13's `comp` gate).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PrivacyTuple {
    /// The purpose this tuple applies to.
    pub purpose: Purpose,
    /// The ordered coordinates.
    pub point: PrivacyPoint,
}

impl PrivacyTuple {
    /// Construct a tuple from a purpose and explicit levels.
    pub fn new(
        purpose: impl Into<Purpose>,
        visibility: VisibilityLevel,
        granularity: GranularityLevel,
        retention: RetentionLevel,
    ) -> PrivacyTuple {
        PrivacyTuple {
            purpose: purpose.into(),
            point: PrivacyPoint::new(visibility, granularity, retention),
        }
    }

    /// Construct a tuple from a purpose and a point.
    pub fn from_point(purpose: impl Into<Purpose>, point: PrivacyPoint) -> PrivacyTuple {
        PrivacyTuple {
            purpose: purpose.into(),
            point,
        }
    }

    /// The implicit "reveal nothing" tuple `⟨pr, 0, 0, 0⟩` Definition 1
    /// assumes for purposes a provider did not mention.
    pub fn deny_all(purpose: impl Into<Purpose>) -> PrivacyTuple {
        PrivacyTuple::from_point(purpose, PrivacyPoint::ZERO)
    }

    /// The raw order value of an ordered dimension — `p[dim]`.
    pub fn get(&self, dim: Dim) -> u32 {
        self.point.get(dim)
    }

    /// Whether two tuples share a purpose (the purpose half of Equation 13;
    /// the attribute half lives in the policy layer, which knows which
    /// attribute each tuple is attached to).
    pub fn same_purpose(&self, other: &PrivacyTuple) -> bool {
        self.purpose == other.purpose
    }
}

impl fmt::Display for PrivacyTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "⟨{}, {}, {}, {}⟩",
            self.purpose, self.point.visibility, self.point.granularity, self.point.retention
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(v: u32, g: u32, r: u32) -> PrivacyPoint {
        PrivacyPoint::from_raw(v, g, r)
    }

    #[test]
    fn get_and_with_agree() {
        let p = pt(1, 2, 3);
        assert_eq!(p.get(Dim::Visibility), 1);
        assert_eq!(p.get(Dim::Granularity), 2);
        assert_eq!(p.get(Dim::Retention), 3);
        for d in Dim::ALL {
            assert_eq!(p.with(d, 9).get(d), 9);
        }
    }

    #[test]
    fn bounded_by_is_componentwise_le() {
        assert!(pt(1, 1, 1).bounded_by(&pt(1, 2, 3)));
        assert!(pt(1, 2, 3).bounded_by(&pt(1, 2, 3)));
        assert!(!pt(2, 1, 1).bounded_by(&pt(1, 2, 3)));
    }

    #[test]
    fn dominates_requires_strictness() {
        assert!(pt(2, 2, 2).dominates(&pt(1, 2, 2)));
        assert!(!pt(2, 2, 2).dominates(&pt(2, 2, 2)));
        assert!(!pt(2, 0, 2).dominates(&pt(1, 1, 1)));
    }

    #[test]
    fn exceeded_dims_reports_only_strict_exceedance() {
        let pref = pt(2, 2, 2);
        let policy = pt(3, 2, 1);
        assert_eq!(pref.exceeded_dims(&policy), vec![Dim::Visibility]);
        assert!(pref.exceeded_dims(&pref).is_empty());
    }

    #[test]
    fn exceedance_matches_equation_12_per_dimension() {
        let pref = pt(2, 3, 10);
        let policy = pt(4, 1, 12);
        let exc = pref.exceedance(&policy);
        assert_eq!(exc[0], (Dim::Visibility, 2));
        assert_eq!(exc[1], (Dim::Granularity, 0)); // policy narrower: no violation
        assert_eq!(exc[2], (Dim::Retention, 2));
    }

    #[test]
    fn join_meet_are_lattice_ops() {
        let a = pt(1, 5, 2);
        let b = pt(3, 1, 2);
        assert_eq!(a.join(&b), pt(3, 5, 2));
        assert_eq!(a.meet(&b), pt(1, 1, 2));
        assert!(a.bounded_by(&a.join(&b)));
        assert!(a.meet(&b).bounded_by(&a));
    }

    #[test]
    fn deny_all_is_the_origin() {
        let t = PrivacyTuple::deny_all("ads");
        assert_eq!(t.point, PrivacyPoint::ZERO);
        assert_eq!(t.purpose, Purpose::new("ads"));
    }

    #[test]
    fn same_purpose_gate() {
        let a = PrivacyTuple::from_point("billing", pt(1, 1, 1));
        let b = PrivacyTuple::from_point("billing", pt(2, 2, 2));
        let c = PrivacyTuple::from_point("ads", pt(2, 2, 2));
        assert!(a.same_purpose(&b));
        assert!(!a.same_purpose(&c));
    }

    #[test]
    fn display_is_human_readable() {
        let t = PrivacyTuple::new(
            "billing",
            VisibilityLevel::HOUSE,
            GranularityLevel::PARTIAL,
            RetentionLevel::days(90),
        );
        assert_eq!(t.to_string(), "⟨billing, house, partial, 90d⟩");
    }

    #[test]
    fn serde_round_trip() {
        let t = PrivacyTuple::new(
            "research",
            VisibilityLevel::THIRD_PARTY,
            GranularityLevel::SPECIFIC,
            RetentionLevel::FOREVER,
        );
        let json = serde_json::to_string(&t).unwrap();
        let back: PrivacyTuple = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
