//! A dominance lattice over purposes (the paper's §3, Assumption 4 note).
//!
//! The base model treats purposes as merely distinguishable. The paper points
//! at ongoing work (Ghazinour & Barker's enforceable lattice structure for
//! P3P semantics) that arranges purposes in a lattice; under that extension,
//! a policy tuple for purpose `q` is comparable with a preference tuple for
//! purpose `p` whenever `q` is dominated by `p` (using data for a *narrower*
//! purpose than consented is fine; a *broader* one is not).
//!
//! [`PurposeLattice`] is a DAG of `narrower → broader` edges with reachability
//! queries, cycle rejection, and least-upper-bound computation. The ablation
//! experiment A2 compares violation counts under flat purpose matching vs
//! lattice-dominance matching.

use std::collections::HashMap;
use std::fmt;

use crate::purpose::Purpose;

/// Error building or querying a [`PurposeLattice`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LatticeError {
    /// Adding the edge would create a cycle, breaking the partial order.
    CycleDetected {
        /// The narrower end of the offending edge.
        narrower: Purpose,
        /// The broader end of the offending edge.
        broader: Purpose,
    },
    /// The purpose is not a member of the lattice.
    UnknownPurpose(Purpose),
}

impl fmt::Display for LatticeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatticeError::CycleDetected { narrower, broader } => write!(
                f,
                "edge {narrower} ⊑ {broader} would create a cycle in the purpose lattice"
            ),
            LatticeError::UnknownPurpose(p) => write!(f, "purpose {p} is not in the lattice"),
        }
    }
}

impl std::error::Error for LatticeError {}

/// A partial order over purposes, `narrower ⊑ broader`.
///
/// Stored as a DAG with memo-free reachability (the lattices in policy work
/// are small — tens of nodes — so a DFS per query is cheap and keeps the
/// structure trivially correct under mutation).
#[derive(Debug, Clone, Default)]
pub struct PurposeLattice {
    /// node id per purpose
    ids: HashMap<Purpose, usize>,
    /// purpose per node id
    purposes: Vec<Purpose>,
    /// adjacency: edges from narrower to broader
    up_edges: Vec<Vec<usize>>,
}

impl PurposeLattice {
    /// An empty lattice (every purpose incomparable — the base model).
    pub fn new() -> PurposeLattice {
        PurposeLattice::default()
    }

    /// Insert a purpose as a node (idempotent). Returns its node id.
    pub fn add_purpose(&mut self, purpose: impl Into<Purpose>) -> usize {
        let purpose = purpose.into();
        if let Some(&id) = self.ids.get(&purpose) {
            return id;
        }
        let id = self.purposes.len();
        self.ids.insert(purpose.clone(), id);
        self.purposes.push(purpose);
        self.up_edges.push(Vec::new());
        id
    }

    /// Declare `narrower ⊑ broader`. Both purposes are added if missing.
    ///
    /// Fails (leaving the lattice unchanged) if the edge would create a
    /// cycle, which would make "dominates" reflexive between distinct
    /// purposes and break the partial order.
    pub fn add_edge(
        &mut self,
        narrower: impl Into<Purpose>,
        broader: impl Into<Purpose>,
    ) -> Result<(), LatticeError> {
        let narrower = narrower.into();
        let broader = broader.into();
        let n = self.add_purpose(narrower.clone());
        let b = self.add_purpose(broader.clone());
        if n == b || self.reachable(b, n) {
            return Err(LatticeError::CycleDetected { narrower, broader });
        }
        if !self.up_edges[n].contains(&b) {
            self.up_edges[n].push(b);
        }
        Ok(())
    }

    /// Number of purposes in the lattice.
    pub fn len(&self) -> usize {
        self.purposes.len()
    }

    /// Whether the lattice has no purposes.
    pub fn is_empty(&self) -> bool {
        self.purposes.is_empty()
    }

    /// Whether `purpose` is a member.
    pub fn contains(&self, purpose: &Purpose) -> bool {
        self.ids.contains_key(purpose)
    }

    /// Whether `sub ⊑ sup` in the lattice (reflexive).
    ///
    /// Unknown purposes are only comparable to themselves, which makes the
    /// lattice a conservative refinement of flat matching: adding a lattice
    /// can only *add* comparability between distinct purposes, never remove
    /// the identity comparisons the base model performs.
    pub fn dominated_by(&self, sub: &Purpose, sup: &Purpose) -> bool {
        if sub == sup {
            return true;
        }
        match (self.ids.get(sub), self.ids.get(sup)) {
            (Some(&a), Some(&b)) => self.reachable(a, b),
            _ => false,
        }
    }

    /// All purposes that dominate `purpose` (including itself).
    pub fn ancestors(&self, purpose: &Purpose) -> Result<Vec<Purpose>, LatticeError> {
        let &start = self
            .ids
            .get(purpose)
            .ok_or_else(|| LatticeError::UnknownPurpose(purpose.clone()))?;
        let mut seen = vec![false; self.purposes.len()];
        let mut stack = vec![start];
        let mut out = Vec::new();
        while let Some(node) = stack.pop() {
            if std::mem::replace(&mut seen[node], true) {
                continue;
            }
            out.push(self.purposes[node].clone());
            stack.extend(&self.up_edges[node]);
        }
        out.sort();
        Ok(out)
    }

    /// The set of purposes whose stated consent covers `purpose`: every
    /// purpose that dominates it, including itself. This is `ancestors`
    /// extended to unknown purposes — a purpose outside the lattice is
    /// only comparable to itself (matching [`Self::dominated_by`]), so its
    /// covering set is the singleton `{purpose}`. Plan compilation uses
    /// this to replace per-pair `dominated_by` walks with precomputed id
    /// lists.
    pub fn covering_set(&self, purpose: &Purpose) -> Vec<Purpose> {
        self.ancestors(purpose)
            .unwrap_or_else(|_| vec![purpose.clone()])
    }

    /// Least upper bounds of two purposes: the minimal common ancestors.
    ///
    /// In a true lattice this is a single purpose; in a general DAG there may
    /// be several (or none), all of which are returned.
    pub fn least_upper_bounds(
        &self,
        a: &Purpose,
        b: &Purpose,
    ) -> Result<Vec<Purpose>, LatticeError> {
        let anc_a = self.ancestors(a)?;
        let anc_b = self.ancestors(b)?;
        let common: Vec<Purpose> = anc_a
            .iter()
            .filter(|p| anc_b.contains(p))
            .cloned()
            .collect();
        // Keep only the minimal elements of the common-ancestor set.
        let minimal: Vec<Purpose> = common
            .iter()
            .filter(|c| {
                !common
                    .iter()
                    .any(|other| *other != **c && self.dominated_by(other, c))
            })
            .cloned()
            .collect();
        Ok(minimal)
    }

    /// Build a lattice from a whole edge list at once, keeping every edge
    /// the cycle check accepts and returning the rejected ones as
    /// structured [`LatticeError`]s instead of dropping them silently.
    ///
    /// A malformed taxonomy (a cycle, a self-loop) used to be easy to
    /// swallow with `let _ = l.add_edge(..)` per edge — which quietly
    /// *removes* comparability the author declared and thereby weakens
    /// the Def. 4 coverage sets audits are built on. Callers that want
    /// the lenient behaviour get it here with the rejects surfaced for
    /// logging or assertion; callers that want malformed input to be
    /// fatal should use [`PurposeLattice::try_from_edges`].
    pub fn from_edges<N, B>(
        edges: impl IntoIterator<Item = (N, B)>,
    ) -> (PurposeLattice, Vec<LatticeError>)
    where
        N: Into<Purpose>,
        B: Into<Purpose>,
    {
        let mut lattice = PurposeLattice::new();
        let mut rejected = Vec::new();
        for (narrower, broader) in edges {
            if let Err(e) = lattice.add_edge(narrower, broader) {
                rejected.push(e);
            }
        }
        (lattice, rejected)
    }

    /// Strict sibling of [`PurposeLattice::from_edges`]: the first edge
    /// the cycle check rejects fails the whole build, so a malformed
    /// taxonomy cannot quietly produce a weaker partial order.
    pub fn try_from_edges<N, B>(
        edges: impl IntoIterator<Item = (N, B)>,
    ) -> Result<PurposeLattice, LatticeError>
    where
        N: Into<Purpose>,
        B: Into<Purpose>,
    {
        let mut lattice = PurposeLattice::new();
        for (narrower, broader) in edges {
            lattice.add_edge(narrower, broader)?;
        }
        Ok(lattice)
    }

    fn reachable(&self, from: usize, to: usize) -> bool {
        if from == to {
            return true;
        }
        let mut seen = vec![false; self.purposes.len()];
        let mut stack = vec![from];
        while let Some(node) = stack.pop() {
            if std::mem::replace(&mut seen[node], true) {
                continue;
            }
            if node == to {
                return true;
            }
            stack.extend(&self.up_edges[node]);
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(name: &str) -> Purpose {
        Purpose::new(name)
    }

    /// billing ⊑ operations ⊑ any; ads ⊑ marketing ⊑ any
    fn sample() -> PurposeLattice {
        let mut l = PurposeLattice::new();
        l.add_edge("billing", "operations").unwrap();
        l.add_edge("operations", "any").unwrap();
        l.add_edge("ads", "marketing").unwrap();
        l.add_edge("marketing", "any").unwrap();
        l
    }

    #[test]
    fn covering_set_matches_dominated_by() {
        let l = sample();
        let covering = l.covering_set(&p("billing"));
        assert_eq!(
            covering,
            vec![p("any"), p("billing"), p("operations")],
            "sorted ancestor closure including self"
        );
        for q in ["billing", "operations", "any", "ads", "marketing", "ghost"] {
            assert_eq!(
                covering.contains(&p(q)),
                l.dominated_by(&p("billing"), &p(q)),
                "covering_set must agree with dominated_by for {q}"
            );
        }
        // Unknown purposes cover only themselves.
        assert_eq!(l.covering_set(&p("ghost")), vec![p("ghost")]);
    }

    #[test]
    fn dominance_is_reflexive_and_transitive() {
        let l = sample();
        assert!(l.dominated_by(&p("billing"), &p("billing")));
        assert!(l.dominated_by(&p("billing"), &p("operations")));
        assert!(l.dominated_by(&p("billing"), &p("any")));
        assert!(!l.dominated_by(&p("operations"), &p("billing")));
        assert!(!l.dominated_by(&p("billing"), &p("marketing")));
    }

    #[test]
    fn unknown_purposes_are_only_self_comparable() {
        let l = sample();
        assert!(l.dominated_by(&p("mystery"), &p("mystery")));
        assert!(!l.dominated_by(&p("mystery"), &p("any")));
        assert!(!l.dominated_by(&p("any"), &p("mystery")));
    }

    #[test]
    fn cycles_are_rejected() {
        let mut l = sample();
        let err = l.add_edge("any", "billing").unwrap_err();
        assert!(matches!(err, LatticeError::CycleDetected { .. }));
        // Self loops too.
        assert!(l.add_edge("ads", "ads").is_err());
        // The failed insert must not have corrupted the order.
        assert!(l.dominated_by(&p("billing"), &p("any")));
        assert!(!l.dominated_by(&p("any"), &p("billing")));
    }

    #[test]
    fn ancestors_include_self_and_all_broader() {
        let l = sample();
        let anc = l.ancestors(&p("billing")).unwrap();
        assert_eq!(anc, vec![p("any"), p("billing"), p("operations")]);
        assert!(matches!(
            l.ancestors(&p("nope")),
            Err(LatticeError::UnknownPurpose(_))
        ));
    }

    #[test]
    fn least_upper_bounds_finds_the_join() {
        let l = sample();
        assert_eq!(
            l.least_upper_bounds(&p("billing"), &p("ads")).unwrap(),
            vec![p("any")]
        );
        assert_eq!(
            l.least_upper_bounds(&p("billing"), &p("operations"))
                .unwrap(),
            vec![p("operations")]
        );
        assert_eq!(
            l.least_upper_bounds(&p("ads"), &p("ads")).unwrap(),
            vec![p("ads")]
        );
    }

    #[test]
    fn duplicate_edges_and_nodes_are_idempotent() {
        let mut l = sample();
        let before = l.len();
        l.add_edge("billing", "operations").unwrap();
        l.add_purpose("billing");
        assert_eq!(l.len(), before);
    }

    /// A deliberately cyclic edge list: the bulk builders must surface
    /// the rejected edges structurally (lenient) or fail the whole build
    /// (strict) — never silently weaken the declared order.
    #[test]
    fn cyclic_input_is_surfaced_not_swallowed() {
        let cyclic = [
            ("billing", "operations"),
            ("operations", "any"),
            ("any", "billing"),   // closes a 3-cycle
            ("ads", "marketing"), // fine
            ("ads", "ads"),       // self-loop
        ];

        let (l, rejected) = PurposeLattice::from_edges(cyclic);
        assert_eq!(rejected.len(), 2, "both bad edges reported: {rejected:?}");
        assert_eq!(
            rejected[0],
            LatticeError::CycleDetected {
                narrower: p("any"),
                broader: p("billing"),
            }
        );
        assert_eq!(
            rejected[1],
            LatticeError::CycleDetected {
                narrower: p("ads"),
                broader: p("ads"),
            }
        );
        // The accepted edges still form the expected partial order.
        assert!(l.dominated_by(&p("billing"), &p("any")));
        assert!(l.dominated_by(&p("ads"), &p("marketing")));
        assert!(!l.dominated_by(&p("any"), &p("billing")));

        // Strict build: the first bad edge is fatal.
        assert_eq!(
            PurposeLattice::try_from_edges(cyclic).unwrap_err(),
            LatticeError::CycleDetected {
                narrower: p("any"),
                broader: p("billing"),
            }
        );
        // A clean list builds with no rejects on either path.
        let clean = [("billing", "operations"), ("operations", "any")];
        let (_, rejects) = PurposeLattice::from_edges(clean);
        assert!(rejects.is_empty());
        assert!(PurposeLattice::try_from_edges(clean).is_ok());
    }

    #[test]
    fn empty_lattice_behaves_like_flat_matching() {
        let l = PurposeLattice::new();
        assert!(l.is_empty());
        assert!(l.dominated_by(&p("x"), &p("x")));
        assert!(!l.dominated_by(&p("x"), &p("y")));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Build a lattice from random edges over a small purpose
        /// universe via the lenient bulk builder — the result is always
        /// a valid DAG, and every rejection is a structured cycle
        /// report, not a silent skip.
        fn build(edges: &[(u8, u8)]) -> PurposeLattice {
            let (l, rejected) = PurposeLattice::from_edges(
                edges
                    .iter()
                    .map(|(a, b)| (format!("p{a}"), format!("p{b}"))),
            );
            for e in rejected {
                assert!(
                    matches!(e, LatticeError::CycleDetected { .. }),
                    "bulk build may only reject cycles, got {e:?}"
                );
            }
            l
        }

        proptest! {
            /// Whatever edges are thrown at it, the accepted relation is a
            /// partial order: reflexive, transitive, antisymmetric.
            #[test]
            fn random_edges_always_yield_a_partial_order(
                edges in proptest::collection::vec((0u8..8, 0u8..8), 0..24)
            ) {
                let l = build(&edges);
                let ps: Vec<Purpose> = (0..8).map(|i| p(&format!("p{i}"))).collect();
                for a in &ps {
                    prop_assert!(l.dominated_by(a, a), "reflexivity");
                    for b in &ps {
                        if a != b && l.dominated_by(a, b) {
                            prop_assert!(!l.dominated_by(b, a), "antisymmetry {a} {b}");
                        }
                        for c in &ps {
                            if l.dominated_by(a, b) && l.dominated_by(b, c) {
                                prop_assert!(l.dominated_by(a, c), "transitivity {a} {b} {c}");
                            }
                        }
                    }
                }
            }

            /// `ancestors` agrees with `dominated_by`, and every common
            /// upper bound dominates some least upper bound.
            #[test]
            fn ancestors_and_lubs_are_consistent(
                edges in proptest::collection::vec((0u8..6, 0u8..6), 0..18)
            ) {
                let l = build(&edges);
                let ps: Vec<Purpose> = (0..6)
                    .map(|i| p(&format!("p{i}")))
                    .filter(|x| l.contains(x))
                    .collect();
                for a in &ps {
                    let anc = l.ancestors(a).unwrap();
                    for b in &ps {
                        prop_assert_eq!(anc.contains(b), l.dominated_by(a, b));
                    }
                }
                for a in &ps {
                    for b in &ps {
                        let lubs = l.least_upper_bounds(a, b).unwrap();
                        for lub in &lubs {
                            prop_assert!(l.dominated_by(a, lub));
                            prop_assert!(l.dominated_by(b, lub));
                        }
                        // Every common ancestor dominates some LUB... i.e.
                        // is dominated BY no LUB it strictly precedes;
                        // check minimality: no LUB dominates another.
                        for x in &lubs {
                            for y in &lubs {
                                if x != y {
                                    prop_assert!(!l.dominated_by(x, y), "non-minimal LUB");
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}
