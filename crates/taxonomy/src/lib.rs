//! # qpv-taxonomy
//!
//! The four-dimensional data-privacy taxonomy underlying *Quantifying Privacy
//! Violations* (Banerjee, Karimi Adl, Wu, Barker; SDM @ VLDB 2011), which in
//! turn builds on *A Data Privacy Taxonomy* (Barker et al., BNCOD 2009).
//!
//! Privacy is modelled as a point in a four-dimensional space:
//!
//! * [`Purpose`] — *why* the datum is used. Categorical: different purposes
//!   are distinguishable but (in the base model) not ordered. An optional
//!   [`lattice::PurposeLattice`] refines this into a dominance hierarchy,
//!   following the paper's reference to lattice-structured purposes.
//! * [`VisibilityLevel`] — *who* may see the datum while stored. Totally
//!   ordered from [`VisibilityLevel::NONE`] (no one) to
//!   [`VisibilityLevel::WORLD`] (public).
//! * [`GranularityLevel`] — *how precisely* the datum is revealed. Totally
//!   ordered from [`GranularityLevel::NONE`] (not revealed) to
//!   [`GranularityLevel::SPECIFIC`] (exact value).
//! * [`RetentionLevel`] — *how long* the datum is kept. Ordered time,
//!   measured in days.
//!
//! A [`PrivacyTuple`] combines one value from each dimension. House policies
//! and provider preferences are sets of such tuples (built in the
//! `qpv-policy` crate); a *violation* occurs when a policy tuple exceeds a
//! comparable preference tuple on any ordered dimension — the geometric
//! "escape from the bounding box" of the paper's Figure 1, implemented in
//! [`geometry`].
//!
//! ## Design notes
//!
//! The paper's worked example performs arithmetic on dimension values
//! (`v + 2`, `g − 1`, …), so each ordered dimension is represented as a
//! newtype over `u32` rather than a closed enum: the well-known taxonomy
//! levels are associated constants, and any intermediate level is
//! representable. Saturating arithmetic helpers ([`VisibilityLevel::plus`],
//! etc.) make the example's notation directly expressible.

pub mod attr;
pub mod dimension;
pub mod geometry;
pub mod granularity;
pub mod lattice;
pub mod purpose;
pub mod retention;
pub mod tuple;
pub mod visibility;

pub use attr::AttrName;
pub use dimension::{Dim, Level, ParseLevelError};
pub use geometry::{BoxRelation, ViolationGeometry};
pub use granularity::GranularityLevel;
pub use lattice::{LatticeError, PurposeLattice};
pub use purpose::{Purpose, PurposeSet};
pub use retention::RetentionLevel;
pub use tuple::{PrivacyPoint, PrivacyTuple};
pub use visibility::VisibilityLevel;
