//! The retention dimension: *how long* a datum is kept.
//!
//! Retention is naturally ordered time. We measure it in whole days, which is
//! fine-grained enough for policy statements ("90 days", "7 years") while
//! keeping the raw order an integer like the other dimensions. The special
//! value [`RetentionLevel::FOREVER`] (the order's maximum) models indefinite
//! retention — the paper's motivating "retention of data for an unspecified
//! period in time".

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::dimension::{Dim, Level, ParseLevelError};

/// A point on the retention order, in days. Larger = kept longer = more
/// exposure.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct RetentionLevel(u32);

impl RetentionLevel {
    /// The datum is not retained at all (processed and discarded).
    pub const NONE: RetentionLevel = RetentionLevel(0);
    /// Indefinite retention: the maximum of the order.
    pub const FOREVER: RetentionLevel = RetentionLevel(u32::MAX);

    /// Retention for `n` days.
    pub const fn days(n: u32) -> RetentionLevel {
        RetentionLevel(n)
    }

    /// Retention for `n` weeks (7-day weeks), saturating.
    pub const fn weeks(n: u32) -> RetentionLevel {
        RetentionLevel(n.saturating_mul(7))
    }

    /// Retention for `n` 30-day months, saturating.
    pub const fn months(n: u32) -> RetentionLevel {
        RetentionLevel(n.saturating_mul(30))
    }

    /// Retention for `n` 365-day years, saturating.
    pub const fn years(n: u32) -> RetentionLevel {
        RetentionLevel(n.saturating_mul(365))
    }

    /// The retention period in whole days.
    pub const fn as_days(self) -> u32 {
        self.0
    }

    /// Whether this is indefinite retention.
    pub const fn is_forever(self) -> bool {
        self.0 == u32::MAX
    }
}

impl Level for RetentionLevel {
    const DIM: Dim = Dim::Retention;
    const ZERO: Self = Self::NONE;

    fn raw(self) -> u32 {
        self.0
    }

    fn from_raw(raw: u32) -> Self {
        RetentionLevel(raw)
    }
}

impl fmt::Display for RetentionLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_forever() {
            f.write_str("forever")
        } else {
            write!(f, "{}d", self.0)
        }
    }
}

impl FromStr for RetentionLevel {
    type Err = ParseLevelError;

    /// Accepts `"forever"`, `"none"`, a raw day count, or a count with a
    /// `d`/`w`/`m`/`y` suffix (days, weeks, 30-day months, 365-day years).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseLevelError {
            dim: Dim::Retention,
            input: s.to_string(),
        };
        let lower = s.trim().to_ascii_lowercase();
        match lower.as_str() {
            "forever" | "indefinite" => return Ok(Self::FOREVER),
            "none" => return Ok(Self::NONE),
            _ => {}
        }
        let (digits, scale) = match lower.as_bytes().last() {
            Some(b'd') => (&lower[..lower.len() - 1], 1u32),
            Some(b'w') => (&lower[..lower.len() - 1], 7),
            Some(b'm') => (&lower[..lower.len() - 1], 30),
            Some(b'y') => (&lower[..lower.len() - 1], 365),
            _ => (lower.as_str(), 1),
        };
        let n: u32 = digits.parse().map_err(|_| err())?;
        Ok(RetentionLevel(n.saturating_mul(scale)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_units() {
        assert_eq!(RetentionLevel::weeks(2), RetentionLevel::days(14));
        assert_eq!(RetentionLevel::months(3), RetentionLevel::days(90));
        assert_eq!(RetentionLevel::years(1), RetentionLevel::days(365));
    }

    #[test]
    fn forever_dominates_everything() {
        assert!(RetentionLevel::FOREVER > RetentionLevel::years(1000));
        assert!(RetentionLevel::FOREVER.is_forever());
        assert!(!RetentionLevel::years(1).is_forever());
    }

    #[test]
    fn display_round_trips() {
        for level in [
            RetentionLevel::NONE,
            RetentionLevel::days(90),
            RetentionLevel::FOREVER,
        ] {
            assert_eq!(level.to_string().parse::<RetentionLevel>().unwrap(), level);
        }
    }

    #[test]
    fn parse_suffixes() {
        assert_eq!(
            "90d".parse::<RetentionLevel>().unwrap(),
            RetentionLevel::days(90)
        );
        assert_eq!(
            "2w".parse::<RetentionLevel>().unwrap(),
            RetentionLevel::days(14)
        );
        assert_eq!(
            "6m".parse::<RetentionLevel>().unwrap(),
            RetentionLevel::days(180)
        );
        assert_eq!(
            "7y".parse::<RetentionLevel>().unwrap(),
            RetentionLevel::years(7)
        );
        assert_eq!(
            "120".parse::<RetentionLevel>().unwrap(),
            RetentionLevel::days(120)
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("ninety days".parse::<RetentionLevel>().is_err());
        assert!("".parse::<RetentionLevel>().is_err());
        assert!("d".parse::<RetentionLevel>().is_err());
    }

    #[test]
    fn years_saturate_instead_of_overflowing() {
        let huge = RetentionLevel::years(u32::MAX);
        assert_eq!(huge, RetentionLevel::FOREVER);
    }
}
