//! The geometric view of privacy violations (paper §3, Figure 1).
//!
//! A preference point `p` defines an axis-aligned box `[0, p]` in the ordered
//! `(V, G, R)` space; a policy point `P` defines the box `[0, P]`. The policy
//! violates the preference exactly when the policy box is *not* contained in
//! the preference box — equivalently, when `P` exceeds `p` on at least one
//! ordered dimension. [`ViolationGeometry`] records which dimensions escape
//! and by how much, which is what Figure 1's three panels illustrate:
//!
//! * panel (a): containment, no violation;
//! * panel (b): escape along one dimension;
//! * panel (c): escape along two dimensions.

use serde::{Deserialize, Serialize};

use crate::dimension::Dim;
use crate::tuple::PrivacyPoint;

/// Classification of the policy box relative to the preference box,
/// matching the panels of the paper's Figure 1 (extended to three ordered
/// dimensions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BoxRelation {
    /// The policy box is contained in the preference box: no violation
    /// (Figure 1a).
    Contained,
    /// The policy escapes along exactly one dimension (Figure 1b).
    EscapesOne(Dim),
    /// The policy escapes along exactly two dimensions (Figure 1c).
    EscapesTwo(Dim, Dim),
    /// The policy escapes along all three ordered dimensions.
    EscapesAll,
}

impl BoxRelation {
    /// Number of dimensions along which the policy escapes.
    pub fn escape_count(&self) -> usize {
        match self {
            BoxRelation::Contained => 0,
            BoxRelation::EscapesOne(_) => 1,
            BoxRelation::EscapesTwo(_, _) => 2,
            BoxRelation::EscapesAll => 3,
        }
    }

    /// Whether this relation constitutes a violation (Definition 1).
    pub fn is_violation(&self) -> bool {
        self.escape_count() > 0
    }
}

/// The full geometry of one preference-vs-policy comparison: which ordered
/// dimensions the policy exceeds, and by how much on each.
///
/// The exceedance amounts are exactly Equation 12's `diff` values; the
/// violation model weights them by sensitivities to obtain Equation 14's
/// `conf`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViolationGeometry {
    /// Per-dimension exceedance `(dim, diff)`, zeros retained, in
    /// `Dim::ALL` order.
    pub exceedance: [(Dim, u32); 3],
}

impl ViolationGeometry {
    /// Compare a policy point against a preference point.
    pub fn compare(preference: &PrivacyPoint, policy: &PrivacyPoint) -> ViolationGeometry {
        ViolationGeometry {
            exceedance: preference.exceedance(policy),
        }
    }

    /// The dimensions with strictly positive exceedance.
    pub fn escaped_dims(&self) -> impl Iterator<Item = Dim> + '_ {
        self.exceedance
            .iter()
            .filter(|(_, amount)| *amount > 0)
            .map(|(dim, _)| *dim)
    }

    /// The exceedance along a specific dimension.
    pub fn along(&self, dim: Dim) -> u32 {
        self.exceedance
            .iter()
            .find(|(d, _)| *d == dim)
            .map(|(_, amount)| *amount)
            .expect("exceedance always covers all three ordered dimensions")
    }

    /// Sum of exceedances over all dimensions — the unweighted core of
    /// Equation 14 (all sensitivities 1).
    pub fn total_exceedance(&self) -> u64 {
        self.exceedance.iter().map(|&(_, a)| a as u64).sum()
    }

    /// Whether any dimension escapes (Definition 1's violation test).
    pub fn is_violation(&self) -> bool {
        self.exceedance.iter().any(|&(_, a)| a > 0)
    }

    /// Classify into the Figure 1 panel taxonomy.
    pub fn relation(&self) -> BoxRelation {
        let escaped: Vec<Dim> = self.escaped_dims().collect();
        match escaped.as_slice() {
            [] => BoxRelation::Contained,
            [d] => BoxRelation::EscapesOne(*d),
            [d1, d2] => BoxRelation::EscapesTwo(*d1, *d2),
            _ => BoxRelation::EscapesAll,
        }
    }
}

/// A rectangular sweep over one 2-D slice of the privacy space, reproducing
/// the data behind Figure 1: for a fixed preference point, classify every
/// policy point on the `(dim_x, dim_y)` grid.
///
/// Returns `(x, y, relation)` triples in row-major order. Dimensions other
/// than `dim_x`/`dim_y` are held at the preference's own value (so they never
/// escape, and the classification is purely two-dimensional, as in the
/// figure).
pub fn figure1_grid(
    preference: &PrivacyPoint,
    dim_x: Dim,
    dim_y: Dim,
    max_x: u32,
    max_y: u32,
) -> Vec<(u32, u32, BoxRelation)> {
    assert_ne!(dim_x, dim_y, "figure axes must be distinct dimensions");
    let mut out = Vec::with_capacity(((max_x + 1) * (max_y + 1)) as usize);
    for y in 0..=max_y {
        for x in 0..=max_x {
            let policy = preference.with(dim_x, x).with(dim_y, y);
            let geom = ViolationGeometry::compare(preference, &policy);
            out.push((x, y, geom.relation()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(v: u32, g: u32, r: u32) -> PrivacyPoint {
        PrivacyPoint::from_raw(v, g, r)
    }

    #[test]
    fn containment_is_not_a_violation() {
        let geom = ViolationGeometry::compare(&pt(2, 2, 2), &pt(1, 2, 0));
        assert_eq!(geom.relation(), BoxRelation::Contained);
        assert!(!geom.is_violation());
        assert_eq!(geom.total_exceedance(), 0);
    }

    #[test]
    fn single_dimension_escape_matches_figure_1b() {
        let geom = ViolationGeometry::compare(&pt(2, 2, 2), &pt(2, 4, 1));
        assert_eq!(geom.relation(), BoxRelation::EscapesOne(Dim::Granularity));
        assert!(geom.is_violation());
        assert_eq!(geom.along(Dim::Granularity), 2);
        assert_eq!(geom.along(Dim::Visibility), 0);
    }

    #[test]
    fn two_dimension_escape_matches_figure_1c() {
        let geom = ViolationGeometry::compare(&pt(2, 2, 2), &pt(3, 1, 5));
        assert_eq!(
            geom.relation(),
            BoxRelation::EscapesTwo(Dim::Visibility, Dim::Retention)
        );
        assert_eq!(geom.total_exceedance(), 1 + 3);
    }

    #[test]
    fn all_dimension_escape() {
        let geom = ViolationGeometry::compare(&pt(0, 0, 0), &pt(1, 1, 1));
        assert_eq!(geom.relation(), BoxRelation::EscapesAll);
        assert_eq!(geom.escaped_dims().count(), 3);
    }

    #[test]
    fn escape_count_is_consistent_with_relation() {
        for (pref, policy, n) in [
            (pt(1, 1, 1), pt(1, 1, 1), 0usize),
            (pt(1, 1, 1), pt(2, 1, 1), 1),
            (pt(1, 1, 1), pt(2, 2, 1), 2),
            (pt(1, 1, 1), pt(2, 2, 2), 3),
        ] {
            let geom = ViolationGeometry::compare(&pref, &policy);
            assert_eq!(geom.relation().escape_count(), n);
            assert_eq!(geom.relation().is_violation(), n > 0);
        }
    }

    #[test]
    fn figure1_grid_partitions_the_plane() {
        // Preference at (v=2, g=3) in the (Visibility, Granularity) slice.
        let pref = pt(2, 3, 1);
        let grid = figure1_grid(&pref, Dim::Visibility, Dim::Granularity, 5, 5);
        assert_eq!(grid.len(), 36);
        let contained = grid
            .iter()
            .filter(|(_, _, rel)| *rel == BoxRelation::Contained)
            .count();
        // Containment region is the (2+1)×(3+1) rectangle below the point.
        assert_eq!(contained, 12);
        // Everything strictly beyond both coordinates escapes along both.
        for (x, y, rel) in &grid {
            if *x > 2 && *y > 3 {
                assert_eq!(rel.escape_count(), 2, "at ({x},{y})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn figure1_grid_rejects_duplicate_axes() {
        figure1_grid(&pt(1, 1, 1), Dim::Retention, Dim::Retention, 2, 2);
    }
}
