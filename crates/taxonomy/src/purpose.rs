//! The purpose dimension: *why* a datum is collected and used.
//!
//! In the base model, purpose is categorical — the only assumption the paper
//! makes is that distinct purposes are distinguishable (Assumption 4). It
//! acts as the *grouping key* for violation assessment: policy and preference
//! tuples are compared only within the same purpose. The optional
//! [`crate::lattice::PurposeLattice`] adds the dominance structure the paper
//! points to as ongoing research.

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

use serde::de::{Deserialize, Deserializer};
use serde::ser::{Serialize, Serializer};

/// A named purpose, e.g. `"billing"`, `"marketing"`, `"research"`.
///
/// Purposes are interned behind an [`Arc`], so cloning is a reference-count
/// bump; privacy tuples carry their purpose by value throughout the model.
/// Comparison is by case-sensitive name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Purpose(Arc<str>);

impl Purpose {
    /// Create a purpose with the given name.
    pub fn new(name: impl AsRef<str>) -> Purpose {
        Purpose(Arc::from(name.as_ref()))
    }

    /// The purpose's name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Purpose {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Purpose {
    fn from(name: &str) -> Purpose {
        Purpose::new(name)
    }
}

impl From<String> for Purpose {
    fn from(name: String) -> Purpose {
        Purpose(Arc::from(name))
    }
}

impl From<Arc<str>> for Purpose {
    fn from(name: Arc<str>) -> Purpose {
        Purpose(name)
    }
}

impl Borrow<str> for Purpose {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl Serialize for Purpose {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.0)
    }
}

impl<'de> Deserialize<'de> for Purpose {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        Ok(Purpose::from(s))
    }
}

/// A deduplicated, ordered set of purposes.
///
/// Policies and preference sets need "all purposes mentioned anywhere" when
/// applying Definition 1's implicit-preference rule; this small sorted-vec
/// set keeps that computation allocation-light and deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PurposeSet {
    items: Vec<Purpose>,
}

impl PurposeSet {
    /// An empty set.
    pub fn new() -> PurposeSet {
        PurposeSet::default()
    }

    /// Insert a purpose; returns `true` if it was not already present.
    pub fn insert(&mut self, purpose: Purpose) -> bool {
        match self.items.binary_search(&purpose) {
            Ok(_) => false,
            Err(pos) => {
                self.items.insert(pos, purpose);
                true
            }
        }
    }

    /// Whether the set contains `purpose`.
    pub fn contains(&self, purpose: &Purpose) -> bool {
        self.items.binary_search(purpose).is_ok()
    }

    /// Number of distinct purposes.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterate purposes in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Purpose> {
        self.items.iter()
    }

    /// The set union of `self` and `other`.
    pub fn union(&self, other: &PurposeSet) -> PurposeSet {
        let mut out = self.clone();
        for p in other.iter() {
            out.insert(p.clone());
        }
        out
    }
}

impl FromIterator<Purpose> for PurposeSet {
    fn from_iter<I: IntoIterator<Item = Purpose>>(iter: I) -> PurposeSet {
        let mut set = PurposeSet::new();
        for p in iter {
            set.insert(p);
        }
        set
    }
}

impl<'a> IntoIterator for &'a PurposeSet {
    type Item = &'a Purpose;
    type IntoIter = std::slice::Iter<'a, Purpose>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn purposes_compare_by_name() {
        assert_eq!(Purpose::new("billing"), Purpose::from("billing"));
        assert_ne!(Purpose::new("billing"), Purpose::new("Billing"));
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let p = Purpose::new("research");
        let q = p.clone();
        assert_eq!(p, q);
        assert_eq!(q.name(), "research");
    }

    #[test]
    fn set_deduplicates_and_sorts() {
        let mut set = PurposeSet::new();
        assert!(set.insert(Purpose::new("marketing")));
        assert!(set.insert(Purpose::new("billing")));
        assert!(!set.insert(Purpose::new("marketing")));
        let names: Vec<_> = set.iter().map(Purpose::name).collect();
        assert_eq!(names, ["billing", "marketing"]);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn set_union_merges_without_duplicates() {
        let a: PurposeSet = ["billing", "ads"].into_iter().map(Purpose::from).collect();
        let b: PurposeSet = ["ads", "research"].into_iter().map(Purpose::from).collect();
        let u = a.union(&b);
        assert_eq!(u.len(), 3);
        assert!(u.contains(&Purpose::new("billing")));
        assert!(u.contains(&Purpose::new("research")));
    }

    #[test]
    fn empty_set_behaviour() {
        let set = PurposeSet::new();
        assert!(set.is_empty());
        assert!(!set.contains(&Purpose::new("x")));
    }

    #[test]
    fn serde_round_trip() {
        let p = Purpose::new("analytics");
        let json = serde_json::to_string(&p).unwrap();
        assert_eq!(json, "\"analytics\"");
        let back: Purpose = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
