//! The visibility dimension: *who* may access a stored datum.
//!
//! The taxonomy paper orders visibility by the breadth of the audience. We
//! embed its named levels at fixed raw values, leaving gaps unnecessary: the
//! order is dense enough for the worked example's `v + 2` arithmetic because
//! any intermediate `u32` is a valid level.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::dimension::{Dim, Level, ParseLevelError};

/// A point on the visibility order. Larger = wider audience = more exposure.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct VisibilityLevel(u32);

impl VisibilityLevel {
    /// No one may access the datum (it is effectively not collected).
    pub const NONE: VisibilityLevel = VisibilityLevel(0);
    /// Only the data provider themself.
    pub const OWNER: VisibilityLevel = VisibilityLevel(1);
    /// The house (the organisation operating the repository).
    pub const HOUSE: VisibilityLevel = VisibilityLevel(2);
    /// Named third parties the house shares data with.
    pub const THIRD_PARTY: VisibilityLevel = VisibilityLevel(3);
    /// Anyone; the datum is public.
    pub const WORLD: VisibilityLevel = VisibilityLevel(4);

    /// The named taxonomy levels in increasing order of exposure.
    pub const NAMED: [VisibilityLevel; 5] = [
        Self::NONE,
        Self::OWNER,
        Self::HOUSE,
        Self::THIRD_PARTY,
        Self::WORLD,
    ];

    /// The canonical name of this level if it is one of the taxonomy's named
    /// levels, else `None`.
    pub fn name(self) -> Option<&'static str> {
        match self {
            Self::NONE => Some("none"),
            Self::OWNER => Some("owner"),
            Self::HOUSE => Some("house"),
            Self::THIRD_PARTY => Some("third-party"),
            Self::WORLD => Some("world"),
            _ => None,
        }
    }
}

impl Level for VisibilityLevel {
    const DIM: Dim = Dim::Visibility;
    const ZERO: Self = Self::NONE;

    fn raw(self) -> u32 {
        self.0
    }

    fn from_raw(raw: u32) -> Self {
        VisibilityLevel(raw)
    }
}

impl fmt::Display for VisibilityLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.name() {
            Some(name) => f.write_str(name),
            None => write!(f, "vis:{}", self.0),
        }
    }
}

impl FromStr for VisibilityLevel {
    type Err = ParseLevelError;

    /// Accepts the canonical names (`"house"`, `"third-party"`, …) or a raw
    /// integer, matching what [`fmt::Display`] produces and what the policy
    /// DSL writes.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.trim().to_ascii_lowercase();
        let level = match lower.as_str() {
            "none" => Some(Self::NONE),
            "owner" => Some(Self::OWNER),
            "house" => Some(Self::HOUSE),
            "third-party" | "third_party" | "thirdparty" => Some(Self::THIRD_PARTY),
            "world" | "public" => Some(Self::WORLD),
            other => other
                .strip_prefix("vis:")
                .unwrap_or(other)
                .parse::<u32>()
                .ok()
                .map(VisibilityLevel),
        };
        level.ok_or_else(|| ParseLevelError {
            dim: Dim::Visibility,
            input: s.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_levels_are_strictly_increasing() {
        for pair in VisibilityLevel::NAMED.windows(2) {
            assert!(pair[0] < pair[1], "{} !< {}", pair[0], pair[1]);
        }
    }

    #[test]
    fn ordering_matches_audience_breadth() {
        assert!(VisibilityLevel::NONE < VisibilityLevel::OWNER);
        assert!(VisibilityLevel::HOUSE < VisibilityLevel::THIRD_PARTY);
        assert!(VisibilityLevel::THIRD_PARTY < VisibilityLevel::WORLD);
    }

    #[test]
    fn display_and_parse_round_trip_named() {
        for level in VisibilityLevel::NAMED {
            let shown = level.to_string();
            assert_eq!(shown.parse::<VisibilityLevel>().unwrap(), level);
        }
    }

    #[test]
    fn display_and_parse_round_trip_unnamed() {
        let level = VisibilityLevel::from_raw(7);
        assert_eq!(level.name(), None);
        assert_eq!(level.to_string(), "vis:7");
        assert_eq!("vis:7".parse::<VisibilityLevel>().unwrap(), level);
        assert_eq!("7".parse::<VisibilityLevel>().unwrap(), level);
    }

    #[test]
    fn parse_rejects_garbage() {
        let err = "everyone-ish".parse::<VisibilityLevel>().unwrap_err();
        assert_eq!(err.dim, Dim::Visibility);
    }

    #[test]
    fn parse_accepts_aliases_and_whitespace() {
        assert_eq!(
            " third_party ".parse::<VisibilityLevel>().unwrap(),
            VisibilityLevel::THIRD_PARTY
        );
        assert_eq!(
            "PUBLIC".parse::<VisibilityLevel>().unwrap(),
            VisibilityLevel::WORLD
        );
    }

    #[test]
    fn serde_is_transparent() {
        let json = serde_json::to_string(&VisibilityLevel::THIRD_PARTY).unwrap();
        assert_eq!(json, "3");
        let back: VisibilityLevel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, VisibilityLevel::THIRD_PARTY);
    }
}
