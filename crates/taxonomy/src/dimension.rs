//! The ordered privacy dimensions and the [`Level`] abstraction they share.
//!
//! The paper treats purpose as a grouping key (Assumption 4) and requires a
//! total order only on the remaining three dimensions (Assumption 2). [`Dim`]
//! enumerates those three ordered dimensions so that model code can iterate
//! `dim ∈ {V, G, R}` exactly as Equation 14 does.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The three *ordered* privacy dimensions of the taxonomy.
///
/// Purpose is deliberately absent: the base model treats it as a categorical
/// grouping key, not an ordered axis (paper §3, Assumption 4). Code that
/// needs "all four dimensions" should handle purpose separately, as the
/// violation definitions themselves do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Dim {
    /// Who may access the datum while stored.
    Visibility,
    /// How precisely the datum is revealed.
    Granularity,
    /// How long the datum is retained.
    Retention,
}

impl Dim {
    /// All ordered dimensions, in the order Equation 14 sums over them.
    pub const ALL: [Dim; 3] = [Dim::Visibility, Dim::Granularity, Dim::Retention];

    /// A stable short name used by the policy DSL and reports.
    pub fn short_name(self) -> &'static str {
        match self {
            Dim::Visibility => "vis",
            Dim::Granularity => "gran",
            Dim::Retention => "ret",
        }
    }

    /// Parse a short name produced by [`Dim::short_name`].
    pub fn from_short_name(name: &str) -> Option<Dim> {
        match name {
            "vis" => Some(Dim::Visibility),
            "gran" => Some(Dim::Granularity),
            "ret" => Some(Dim::Retention),
            _ => None,
        }
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Dim::Visibility => "visibility",
            Dim::Granularity => "granularity",
            Dim::Retention => "retention",
        };
        f.write_str(name)
    }
}

/// A value on one ordered privacy dimension.
///
/// Every ordered dimension is a total order over non-negative integers where
/// a larger raw value means *more exposure* (wider visibility, finer
/// granularity, longer retention). The trait pins down the pieces of that
/// contract the violation model relies on:
///
/// * [`Level::raw`] is monotone in the dimension's order, and
/// * [`Level::ZERO`] is the global minimum, used by the paper's implicit
///   preference `⟨pr, 0, 0, 0⟩` for unspecified purposes (Definition 1).
pub trait Level: Copy + Ord + Sized {
    /// The dimension this level belongs to.
    const DIM: Dim;

    /// The global minimum of the dimension ("reveal nothing").
    const ZERO: Self;

    /// The raw order-embedding of the level.
    fn raw(self) -> u32;

    /// Construct a level from its raw order value.
    fn from_raw(raw: u32) -> Self;

    /// The level `n` steps *up* the order (towards more exposure),
    /// saturating at `u32::MAX`. Mirrors the paper's `v + 2` notation.
    fn plus(self, n: u32) -> Self {
        Self::from_raw(self.raw().saturating_add(n))
    }

    /// The level `n` steps *down* the order (towards less exposure),
    /// saturating at zero. Mirrors the paper's `g − 1` notation.
    fn minus(self, n: u32) -> Self {
        Self::from_raw(self.raw().saturating_sub(n))
    }

    /// The order distance `diff(p, P)` of Equation 12: how far `policy`
    /// exceeds `self`, and `0` when it does not exceed.
    ///
    /// This is the severity model's per-dimension building block; it is
    /// deliberately asymmetric — a policy *narrower* than the preference is
    /// not a (negative) violation, it is simply no violation.
    fn exceedance(self, policy: Self) -> u32 {
        policy.raw().saturating_sub(self.raw())
    }
}

/// Error returned when parsing a named level or raw number fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLevelError {
    /// The dimension being parsed.
    pub dim: Dim,
    /// The input that failed to parse.
    pub input: String,
}

impl fmt::Display for ParseLevelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid {} level: {:?}", self.dim, self.input)
    }
}

impl std::error::Error for ParseLevelError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GranularityLevel, RetentionLevel, VisibilityLevel};

    #[test]
    fn all_lists_each_dimension_once() {
        assert_eq!(Dim::ALL.len(), 3);
        assert!(Dim::ALL.contains(&Dim::Visibility));
        assert!(Dim::ALL.contains(&Dim::Granularity));
        assert!(Dim::ALL.contains(&Dim::Retention));
    }

    #[test]
    fn short_names_round_trip() {
        for dim in Dim::ALL {
            assert_eq!(Dim::from_short_name(dim.short_name()), Some(dim));
        }
        assert_eq!(Dim::from_short_name("bogus"), None);
    }

    #[test]
    fn display_names_are_lowercase_words() {
        assert_eq!(Dim::Visibility.to_string(), "visibility");
        assert_eq!(Dim::Granularity.to_string(), "granularity");
        assert_eq!(Dim::Retention.to_string(), "retention");
    }

    #[test]
    fn plus_and_minus_saturate() {
        let v = VisibilityLevel::from_raw(u32::MAX - 1);
        assert_eq!(v.plus(5).raw(), u32::MAX);
        let g = GranularityLevel::from_raw(1);
        assert_eq!(g.minus(10), GranularityLevel::ZERO);
    }

    #[test]
    fn exceedance_matches_equation_12() {
        // diff(p, P) = P − p when P > p, 0 otherwise.
        let pref = RetentionLevel::from_raw(10);
        assert_eq!(pref.exceedance(RetentionLevel::from_raw(17)), 7);
        assert_eq!(pref.exceedance(RetentionLevel::from_raw(10)), 0);
        assert_eq!(pref.exceedance(RetentionLevel::from_raw(3)), 0);
    }

    #[test]
    fn zero_is_global_minimum() {
        assert_eq!(VisibilityLevel::ZERO.raw(), 0);
        assert_eq!(GranularityLevel::ZERO.raw(), 0);
        assert_eq!(RetentionLevel::ZERO.raw(), 0);
    }
}
