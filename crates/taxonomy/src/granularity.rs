//! The granularity dimension: *how precisely* a datum is revealed.
//!
//! The taxonomy distinguishes whether a datum is revealed at all
//! (existential), as an aggregate/range (partial), or exactly (specific).
//! Finer detail = larger raw value = more exposure. Earlier work cited by the
//! paper (Williams & Barker 2007) found providers share *more* when allowed
//! to share *coarser*, which is why granularity is central to the worked
//! example (Ted's most sensitive dimension).

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::dimension::{Dim, Level, ParseLevelError};

/// A point on the granularity order. Larger = finer detail = more exposure.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct GranularityLevel(u32);

impl GranularityLevel {
    /// The datum is not revealed in any form.
    pub const NONE: GranularityLevel = GranularityLevel(0);
    /// Only the datum's existence is revealed ("has a weight on file").
    pub const EXISTENTIAL: GranularityLevel = GranularityLevel(1);
    /// A generalised form is revealed (a range, bucket, or aggregate).
    pub const PARTIAL: GranularityLevel = GranularityLevel(2);
    /// The exact atomic value is revealed.
    pub const SPECIFIC: GranularityLevel = GranularityLevel(3);

    /// The named taxonomy levels in increasing order of exposure.
    pub const NAMED: [GranularityLevel; 4] =
        [Self::NONE, Self::EXISTENTIAL, Self::PARTIAL, Self::SPECIFIC];

    /// The canonical name of this level if it is a named taxonomy level.
    pub fn name(self) -> Option<&'static str> {
        match self {
            Self::NONE => Some("none"),
            Self::EXISTENTIAL => Some("existential"),
            Self::PARTIAL => Some("partial"),
            Self::SPECIFIC => Some("specific"),
            _ => None,
        }
    }
}

impl Level for GranularityLevel {
    const DIM: Dim = Dim::Granularity;
    const ZERO: Self = Self::NONE;

    fn raw(self) -> u32 {
        self.0
    }

    fn from_raw(raw: u32) -> Self {
        GranularityLevel(raw)
    }
}

impl fmt::Display for GranularityLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.name() {
            Some(name) => f.write_str(name),
            None => write!(f, "gran:{}", self.0),
        }
    }
}

impl FromStr for GranularityLevel {
    type Err = ParseLevelError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.trim().to_ascii_lowercase();
        let level = match lower.as_str() {
            "none" => Some(Self::NONE),
            "existential" | "exists" => Some(Self::EXISTENTIAL),
            "partial" | "range" => Some(Self::PARTIAL),
            "specific" | "exact" => Some(Self::SPECIFIC),
            other => other
                .strip_prefix("gran:")
                .unwrap_or(other)
                .parse::<u32>()
                .ok()
                .map(GranularityLevel),
        };
        level.ok_or_else(|| ParseLevelError {
            dim: Dim::Granularity,
            input: s.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_levels_are_strictly_increasing() {
        for pair in GranularityLevel::NAMED.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn coarser_is_less_exposed() {
        // The corollary the paper draws from Williams & Barker: a range is
        // strictly less exposed than the exact value.
        assert!(GranularityLevel::PARTIAL < GranularityLevel::SPECIFIC);
    }

    #[test]
    fn display_and_parse_round_trip() {
        for level in GranularityLevel::NAMED {
            assert_eq!(
                level.to_string().parse::<GranularityLevel>().unwrap(),
                level
            );
        }
        let odd = GranularityLevel::from_raw(9);
        assert_eq!(odd.to_string().parse::<GranularityLevel>().unwrap(), odd);
    }

    #[test]
    fn parse_accepts_aliases() {
        assert_eq!(
            "exact".parse::<GranularityLevel>().unwrap(),
            GranularityLevel::SPECIFIC
        );
        assert_eq!(
            "range".parse::<GranularityLevel>().unwrap(),
            GranularityLevel::PARTIAL
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("ultra".parse::<GranularityLevel>().is_err());
    }
}
