//! Interned attribute names.
//!
//! Attribute names cross the hot audit path the same way purpose names do:
//! every violation witness carries one. [`AttrName`] mirrors [`Purpose`]'s
//! representation — an `Arc<str>` — so constructing a witness from a
//! `SymbolTable` is a reference-count bump, not a string copy, while the
//! serialized form stays a plain JSON string (byte-identical to the
//! `String` it replaces).

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

use serde::de::{Deserialize, Deserializer};
use serde::ser::{Serialize, Serializer};

/// An attribute name, e.g. `"weight"`, `"age"`.
///
/// Cloning is a reference-count bump. Comparison is by case-sensitive name,
/// including against plain `&str` (so call sites and tests can compare
/// without constructing an `AttrName`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrName(Arc<str>);

impl AttrName {
    /// Create an attribute name.
    pub fn new(name: impl AsRef<str>) -> AttrName {
        AttrName(Arc::from(name.as_ref()))
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for AttrName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for AttrName {
    fn from(name: &str) -> AttrName {
        AttrName::new(name)
    }
}

impl From<String> for AttrName {
    fn from(name: String) -> AttrName {
        AttrName(Arc::from(name))
    }
}

impl From<Arc<str>> for AttrName {
    fn from(name: Arc<str>) -> AttrName {
        AttrName(name)
    }
}

impl Borrow<str> for AttrName {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl PartialEq<str> for AttrName {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&str> for AttrName {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

impl PartialEq<String> for AttrName {
    fn eq(&self, other: &String) -> bool {
        &*self.0 == other.as_str()
    }
}

impl Serialize for AttrName {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.0)
    }
}

impl<'de> Deserialize<'de> for AttrName {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        Ok(AttrName::from(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compares_by_name_including_against_str() {
        let a = AttrName::new("weight");
        assert_eq!(a, AttrName::from("weight"));
        assert_eq!(a, "weight");
        assert_eq!(a, *"weight");
        assert_eq!(a, "weight".to_string());
        assert_ne!(a, AttrName::new("age"));
    }

    #[test]
    fn clone_is_cheap_and_shares_storage() {
        let a = AttrName::new("age");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(b.as_str(), "age");
    }

    #[test]
    fn from_shared_arc_does_not_copy() {
        let arc: Arc<str> = Arc::from("height");
        let a = AttrName::from(arc.clone());
        assert_eq!(a, "height");
        // Both handles point at the same allocation: two owners here.
        assert_eq!(Arc::strong_count(&arc), 2);
    }

    #[test]
    fn serde_is_a_plain_json_string() {
        let a = AttrName::new("weight");
        let json = serde_json::to_string(&a).unwrap();
        assert_eq!(json, "\"weight\"");
        let back: AttrName = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
    }
}
