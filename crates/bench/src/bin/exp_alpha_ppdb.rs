//! Experiment E4: `P(W)`, `P(Default)`, and the α-PPDB at population scale.
//!
//! Definitions 2 and 5 define both probabilities as limits of
//! relative-frequency trials; Definition 3 defines the α-PPDB as
//! `P(W) ≤ α`. The paper evaluates these only on the three-person example.
//! This experiment runs them at population scale:
//!
//! 1. `P(W)` / `P(Default)` versus policy widening, stratified by Westin
//!    segment (the paper's heterogeneity argument made visible);
//! 2. the Monte-Carlo estimator of Definitions 2/5 versus the census value
//!    (convergence as trial count grows);
//! 3. the α-PPDB compliance frontier: the widest policy passing each α.
//!
//! Run with: `cargo run -p qpv-bench --bin exp_alpha_ppdb`

use qpv_bench::{check, write_result};
use qpv_core::whatif::WhatIf;
use qpv_core::{census_probability, estimate_probability};
use qpv_synth::{Scenario, Segment};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;

#[derive(Serialize)]
struct AlphaRow {
    step: u32,
    p_violation: f64,
    p_default: f64,
    p_w_by_segment: Vec<(String, f64)>,
}

fn main() {
    println!("== E4: P(W), P(Default), alpha-PPDB (Defs. 2, 3, 5) ==\n");
    let scenario = Scenario::healthcare(2_000, 42);
    let engine = scenario.engine();

    // 1. Probabilities vs widening, stratified by segment.
    println!(
        "{:>5} {:>8} {:>10}   {:>14} {:>12} {:>12}",
        "step", "P(W)", "P(Default)", "fundamentalist", "pragmatist", "unconcerned"
    );
    let mut rows = Vec::new();
    for step in 0..=6u32 {
        let policy = scenario.baseline_policy.widened_uniform(step);
        let report = engine.run_with_policy(&scenario.population.profiles, &policy);
        let outcomes = report.violation_outcomes();
        let mut by_segment = Vec::new();
        for segment in Segment::ALL {
            let members = scenario.population.segment_members(segment);
            let seg_outcomes: Vec<bool> = members.iter().map(|&i| outcomes[i]).collect();
            by_segment.push((
                segment.name().to_string(),
                census_probability(&seg_outcomes),
            ));
        }
        println!(
            "{:>5} {:>8.3} {:>10.3}   {:>14.3} {:>12.3} {:>12.3}",
            step,
            report.p_violation(),
            report.p_default(),
            by_segment[0].1,
            by_segment[1].1,
            by_segment[2].1,
        );
        rows.push(AlphaRow {
            step,
            p_violation: report.p_violation(),
            p_default: report.p_default(),
            p_w_by_segment: by_segment,
        });
    }
    // Heterogeneity claim: fundamentalists are always violated at least as
    // often as the unconcerned.
    let ordered = rows
        .iter()
        .all(|r| r.p_w_by_segment[0].1 >= r.p_w_by_segment[2].1);
    check(
        "P(W|fundamentalist) ≥ P(W|unconcerned) ∀ steps",
        true,
        ordered,
    );

    // 2. Definition 2's estimator converges to the census value.
    println!("\nMonte-Carlo estimator of Definition 2 (baseline policy):");
    let report = engine.run(&scenario.population.profiles);
    let outcomes = report.violation_outcomes();
    let census = census_probability(&outcomes);
    let mut rng = SmallRng::seed_from_u64(7);
    let mut last_err = f64::INFINITY;
    for trials in [100u32, 1_000, 10_000, 100_000] {
        let est = estimate_probability(&outcomes, trials, &mut rng);
        let err = (est - census).abs();
        println!("  τ = {trials:>7}: P(W) ≈ {est:.4}  (census {census:.4}, |err| {err:.4})");
        if trials == 100_000 {
            check(
                "estimator within 0.01 of census at τ=100k",
                true,
                err < 0.01,
            );
        }
        last_err = err;
    }
    let _ = last_err;

    // 3. The alpha-PPDB frontier.
    println!("\nalpha-PPDB frontier (widest uniform widening with P(W) ≤ α):");
    let whatif = WhatIf::new(&engine, &scenario.population.profiles);
    for alpha in [0.1, 0.25, 0.5, 0.9] {
        match whatif.max_compliant_widening(&scenario.baseline_policy, alpha, 12) {
            Some((steps, o)) => println!(
                "  α = {alpha:>4}: widen ≤ +{steps} (P(W) = {:.3}, N_future = {})",
                o.p_violation, o.remaining
            ),
            None => println!("  α = {alpha:>4}: baseline already exceeds α"),
        }
    }
    // Frontier monotonicity: a larger α can never allow less widening.
    let frontier: Vec<Option<u32>> = [0.1, 0.25, 0.5, 0.9]
        .iter()
        .map(|&a| {
            whatif
                .max_compliant_widening(&scenario.baseline_policy, a, 12)
                .map(|(s, _)| s)
        })
        .collect();
    let mono = frontier
        .windows(2)
        .all(|w| w[1].unwrap_or(0) >= w[0].unwrap_or(0));
    check("frontier monotone in α", true, mono);

    // 4. Thread-count sweep: the census audit itself, sharded. The paper
    // frames Definitions 2/5 as census quantities over the *whole*
    // population, so this is where parallelism pays at scale.
    println!("\nparallel audit thread sweep (50k providers):");
    let big = qpv_synth::par_generate(&scenario.spec, 50_000, 42, qpv_core::default_threads());
    let _warmup = engine.run(&big.profiles); // fault pages in before timing
    let t = std::time::Instant::now();
    let sequential = engine.run(&big.profiles);
    let base = t.elapsed();
    println!("  sequential: {base:>10.2?}");
    for threads in [2usize, 4, 8] {
        let nz = std::num::NonZeroUsize::new(threads).expect("nonzero");
        let t = std::time::Instant::now();
        let parallel = engine
            .par_audit(&big.profiles, nz)
            .expect("no fault injection in experiments");
        let took = t.elapsed();
        check(
            &format!("par_audit({threads}) report identical"),
            true,
            parallel == sequential,
        );
        println!(
            "  {threads} threads:  {took:>10.2?}  ({:.2}x)",
            base.as_secs_f64() / took.as_secs_f64()
        );
    }

    let path = write_result("exp_alpha_ppdb", &rows);
    println!("\nresult JSON: {}", path.display());
}
