//! Experiment E3: the §9 policy-expansion analysis (Equations 25–31).
//!
//! §9 derives, for a house considering widening its policy:
//!
//! * `Utility_current = N·U` (Eq. 25), `N_future = N − Σ default_i`
//!   (Eq. 26), `Utility_future = N_future·(U + T)` (Eq. 27);
//! * the justification condition `Utility_future > Utility_current`
//!   (Eq. 28) and its closed form `T > U (N_current/N_future − 1)`
//!   (Eq. 31).
//!
//! The paper derives the formulas but reports no numbers (no dataset); this
//! experiment instantiates them on a 1,000-provider Westin-mix healthcare
//! population, conditioned — per §9's premise — on providers compatible
//! with the current policy. The paper's qualitative claims are checked
//! mechanically:
//!
//! 1. defaults accumulate monotonically with widening;
//! 2. per-row `T_min` equals Eq. 31 exactly;
//! 3. the house's net gain peaks at an *interior* widening — "the house is
//!    strictly limited in how much it can expand its privacy policies and
//!    economically benefit".
//!
//! Run with: `cargo run -p qpv-bench --bin exp_policy_expansion`

use qpv_bench::{check, write_result};
use qpv_core::ProviderProfile;
use qpv_economics::expansion::render_table;
use qpv_economics::{ExpansionSweep, UtilityModel};
use qpv_synth::Scenario;

fn main() {
    println!("== E3: policy expansion economics (paper §9) ==\n");
    let scenario = Scenario::healthcare(1_000, 11);
    let engine = scenario.engine();

    // §9 premise: no provider has defaulted under the current policy.
    let baseline = engine.run(&scenario.population.profiles);
    let current: Vec<ProviderProfile> = scenario
        .population
        .profiles
        .iter()
        .zip(baseline.providers.iter())
        .filter(|(_, a)| !a.defaulted)
        .map(|(p, _)| p.clone())
        .collect();
    println!(
        "population: {} generated, {} compatible with the current policy",
        scenario.population.len(),
        current.len()
    );

    let utility = UtilityModel::new(scenario.utility_per_provider);
    let t_per_step = scenario.utility_per_provider * 0.15;
    let sweep = ExpansionSweep::new(&engine, &current, utility, t_per_step);
    let rows = sweep.run_uniform(&scenario.baseline_policy, 10);

    println!(
        "\nU = {} per provider, T(s) = {:.1}·s\n",
        scenario.utility_per_provider, t_per_step
    );
    print!("{}", render_table(&rows));

    // Claim checks.
    check("baseline defaults (§9 premise)", 0, rows[0].defaults);
    let monotone = rows
        .windows(2)
        .all(|w| w[1].defaults >= w[0].defaults && w[1].total_violations >= w[0].total_violations);
    check("defaults & violations monotone in widening", true, monotone);
    let t_min_ok = rows.iter().all(|r| {
        let expected = utility.break_even_extra(current.len(), r.n_future);
        (r.t_min - expected).abs() < 1e-9 || (r.t_min.is_infinite() && expected.is_infinite())
    });
    check("per-row T_min equals Eq. 31", true, t_min_ok);
    let best = ExpansionSweep::optimal_step(&rows).expect("non-empty");
    check(
        "interior optimum exists (0 < s* < max)",
        true,
        best.step > 0 && best.step < 10 && best.net_gain > 0.0,
    );
    check(
        "maximal widening is detrimental (net gain < 0)",
        true,
        rows.last().unwrap().net_gain < 0.0,
    );
    println!(
        "\nhouse optimum: widen +{} with net gain {:+.1}; at +10, {} of {} providers default",
        best.step,
        best.net_gain,
        rows.last().unwrap().defaults,
        current.len()
    );

    let path = write_result("exp_policy_expansion", &rows);
    println!("result JSON: {}", path.display());
}
