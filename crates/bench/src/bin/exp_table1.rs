//! Experiment E1: regenerate §8's Table 1 and Equations 19–24.
//!
//! The paper's only quantitative artefact with exact reported numbers. Every
//! value is recomputed through the full stack (population → PPDB storage →
//! audit) and compared against the paper's.
//!
//! Run with: `cargo run -p qpv-bench --bin exp_table1`

use qpv_bench::{check, write_result};
use qpv_core::report;
use qpv_core::{Ppdb, PpdbConfig};
use qpv_reldb::Database;
use qpv_synth::Scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== E1: Table 1 / Equations 19-24 (paper §8) ==\n");
    let scenario = Scenario::worked_example();

    // Through storage, as Table 1's caption implies a stored database.
    let mut ppdb = Ppdb::create(
        Database::in_memory(),
        PpdbConfig::new("people", "provider_id"),
        scenario.data_schema(),
    )?;
    ppdb.set_policy(&scenario.baseline_policy)?;
    ppdb.set_attribute_weight("weight", 4)?;
    for (profile, row) in scenario
        .population
        .profiles
        .iter()
        .zip(&scenario.population.data_rows)
    {
        ppdb.register_provider(profile, row.clone())?;
    }
    let audit = ppdb.audit()?;

    println!("{}", report::render(&audit));

    // Paper values, one check per reported quantity.
    let names = ["Alice", "Ted", "Bob"];
    let expected_w = [0u8, 1, 1];
    let expected_conf = [0u64, 60, 80];
    let expected_default = [0u8, 1, 0];
    for i in 0..3 {
        let p = &audit.providers[i];
        check(
            &format!("{} w_i (Table 1)", names[i]),
            expected_w[i],
            p.violated as u8,
        );
        check(
            &format!("{} conf (Eq. 20)", names[i]),
            expected_conf[i],
            p.score,
        );
        check(
            &format!("{} default_i (Eqs. 21-23)", names[i]),
            expected_default[i],
            p.defaulted as u8,
        );
    }
    check(
        "P(Default) (Eq. 24)",
        format!("{:.4}", 1.0 / 3.0),
        format!("{:.4}", audit.p_default()),
    );
    check(
        "Violations (Eq. 16 over Table 1)",
        140,
        audit.total_violations,
    );

    let path = write_result("exp_table1", &audit);
    println!("\nresult JSON: {}", path.display());
    Ok(())
}
