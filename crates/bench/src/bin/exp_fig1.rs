//! Experiment E2: regenerate the geometry behind Figure 1 (paper §3).
//!
//! Figure 1 plots a provider's preference tuple against house policy tuples
//! in a 2-D slice of the privacy space and shades three regions: (a) the
//! policy box is bounded by the preference (no violation), (b) it escapes
//! along one dimension, (c) along two. This experiment sweeps the full grid
//! of policy points in the (visibility, granularity) slice for a fixed
//! preference, classifies every cell, renders the panels as ASCII, and
//! reports the region areas.
//!
//! Run with: `cargo run -p qpv-bench --bin exp_fig1`

use qpv_bench::{check, write_result};
use qpv_taxonomy::geometry::{figure1_grid, BoxRelation};
use qpv_taxonomy::{Dim, PrivacyPoint};
use serde::Serialize;

#[derive(Serialize)]
struct Fig1Result {
    preference: PrivacyPoint,
    max_x: u32,
    max_y: u32,
    contained: usize,
    escapes_one: usize,
    escapes_two: usize,
    cells: Vec<(u32, u32, u8)>,
}

fn main() {
    println!("== E2: Figure 1 violation geometry (paper §3) ==\n");
    // Preference at (v=3, g=4) in the visibility × granularity slice, as in
    // the figure's S_i × S_j plane; retention held at the preference level.
    let preference = PrivacyPoint::from_raw(3, 4, 2);
    let (max_x, max_y) = (6u32, 6u32);
    let grid = figure1_grid(&preference, Dim::Visibility, Dim::Granularity, max_x, max_y);

    // Render: rows = granularity (top = high), cols = visibility.
    println!("preference point P = (vis=3, gran=4); policy grid classification:");
    println!(
        "  '.' contained (panel a)   '1' one-dim escape (panel b)   '2' two-dim escape (panel c)\n"
    );
    for y in (0..=max_y).rev() {
        let mut line = format!("  gran={y} |");
        for x in 0..=max_x {
            let (_, _, rel) = grid[(y * (max_x + 1) + x) as usize];
            let ch = match rel.escape_count() {
                0 => '.',
                1 => '1',
                _ => '2',
            };
            line.push(' ');
            line.push(ch);
        }
        println!("{line}");
    }
    println!("          +{}", "--".repeat(max_x as usize + 1));
    let cols: Vec<String> = (0..=max_x).map(|x| x.to_string()).collect();
    println!("       vis  {}\n", cols.join(" "));

    let contained = grid
        .iter()
        .filter(|(_, _, r)| *r == BoxRelation::Contained)
        .count();
    let one = grid
        .iter()
        .filter(|(_, _, r)| r.escape_count() == 1)
        .count();
    let two = grid
        .iter()
        .filter(|(_, _, r)| r.escape_count() == 2)
        .count();

    // The figure's structural claims, checked as exact areas:
    // containment region = (3+1)×(4+1) cells; everything else escapes.
    check("panel (a) area: (v+1)(g+1) cells", 20, contained);
    check(
        "panel (b) area: one-dim escapes",
        (3 + 1) * (6 - 4) + (4 + 1) * (6 - 3),
        one,
    );
    check("panel (c) area: two-dim escapes", (6 - 3) * (6 - 4), two);
    check(
        "total cells",
        ((max_x + 1) * (max_y + 1)) as usize,
        contained + one + two,
    );
    // Violation iff outside the box (Definition 1 ⇔ Figure 1).
    check(
        "violations = total − contained",
        ((max_x + 1) * (max_y + 1)) as usize - contained,
        one + two,
    );

    let cells: Vec<(u32, u32, u8)> = grid
        .iter()
        .map(|(x, y, r)| (*x, *y, r.escape_count() as u8))
        .collect();
    let path = write_result(
        "exp_fig1",
        &Fig1Result {
            preference,
            max_x,
            max_y,
            contained,
            escapes_one: one,
            escapes_two: two,
            cells,
        },
    );
    println!("\nresult JSON: {}", path.display());
}
