//! # qpv-bench
//!
//! The experiment harness for the reproduction: one binary per paper
//! artefact (see `src/bin/`) and one Criterion benchmark per performance /
//! ablation question (see `benches/`). `EXPERIMENTS.md` at the repository
//! root records paper-reported versus measured values.
//!
//! | target | artefact |
//! |---|---|
//! | `exp_table1` | E1 — §8 Table 1 and Equations 19–24 |
//! | `exp_fig1` | E2 — Figure 1's violation geometry panels |
//! | `exp_policy_expansion` | E3 — §9 Equations 25–31 |
//! | `exp_alpha_ppdb` | E4 — Definitions 2/3/5 at population scale |
//! | `violation_throughput` | P1 — model evaluation throughput |
//! | `reldb_primitives` | P2 — storage-engine primitives |
//! | `incremental` | A1 — incremental vs full audit |
//! | `purpose_lattice` | A2 — flat vs lattice purpose matching |
//! | `audit_storage` | A3 — indexed vs scanned metadata access |
//! | `delta_audit` | P10 — delta maintenance vs full rebuild |

use std::path::PathBuf;

/// Where experiment binaries drop machine-readable results
/// (`target/experiments/`). Created on demand.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/experiments");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Write a JSON result file for an experiment, returning its path.
pub fn write_result(name: &str, value: &impl serde::Serialize) -> PathBuf {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialisable result");
    std::fs::write(&path, json).expect("write result file");
    path
}

/// The population size a bench should use: `full` normally, or a tiny
/// fraction of it when `QPV_BENCH_SMOKE=1` is set. The smoke mode is how
/// `scripts/tier1.sh --bench-smoke` runs every bench binary as a
/// correctness test (each sample still asserts against its oracle) in
/// seconds instead of minutes — the timings it prints are meaningless.
pub fn bench_n(full: usize) -> usize {
    if std::env::var("QPV_BENCH_SMOKE").is_ok_and(|v| v == "1") {
        (full / 64).clamp(32, 2048)
    } else {
        full
    }
}

/// A paper-vs-measured comparison line for EXPERIMENTS.md-style output.
pub fn check(label: &str, expected: impl std::fmt::Display, actual: impl std::fmt::Display) {
    let expected = expected.to_string();
    let actual = actual.to_string();
    let status = if expected == actual { "OK " } else { "DIFF" };
    println!("[{status}] {label:<42} paper: {expected:<12} measured: {actual}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_creatable_and_writable() {
        let path = write_result("selftest", &serde_json::json!({"ok": true}));
        assert!(path.exists());
        let back: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back["ok"], true);
        std::fs::remove_file(path).unwrap();
    }
}
