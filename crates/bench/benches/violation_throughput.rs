//! P1: model evaluation throughput.
//!
//! How fast are Equation 15 (`Violation_i`) and a full audit (Definitions
//! 1–5 over a population)? Swept over population size; the audit should
//! scale linearly in providers × policy tuples.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qpv_core::profile::assemble;
use qpv_core::severity::violation_score;
use qpv_synth::Scenario;
use std::hint::black_box;

fn bench_full_audit(c: &mut Criterion) {
    let mut group = c.benchmark_group("audit/full");
    for n in [100usize, 1_000, 5_000] {
        let scenario = Scenario::healthcare(n, 42);
        let engine = scenario.engine();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(engine.run(&scenario.population.profiles)));
        });
    }
    group.finish();
}

fn bench_violation_score(c: &mut Criterion) {
    let scenario = Scenario::healthcare(1_000, 42);
    let engine = scenario.engine();
    let weights = scenario.spec.attribute_weights();
    let (sensitivity, _) = assemble(&scenario.population.profiles, &weights);
    let attrs: Vec<&str> = engine.attributes.iter().map(String::as_str).collect();
    c.bench_function("audit/violation_score_64_providers", |b| {
        b.iter(|| {
            for profile in scenario.population.profiles.iter().take(64) {
                black_box(violation_score(
                    &profile.preferences,
                    &engine.policy,
                    &attrs,
                    &sensitivity,
                ));
            }
        });
    });
}

criterion_group!(benches, bench_full_audit, bench_violation_score);
criterion_main!(benches);
