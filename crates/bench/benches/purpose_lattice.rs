//! A2 (ablation): flat purpose matching vs lattice-dominance matching.
//!
//! The base model treats purposes as merely distinguishable; the lattice
//! extension lets a consent for a broad purpose cover narrower policy
//! purposes. This bench measures the evaluation cost of both matchers and
//! reports (once, to stderr) how many violations the lattice *removes* —
//! the semantic payoff that justifies the extra reachability work.

use criterion::{criterion_group, criterion_main, Criterion};
use qpv_core::violation::{witnesses, witnesses_lattice};
use qpv_core::ProviderProfile;
use qpv_policy::{HousePolicy, ProviderId, ProviderPreferences};
use qpv_taxonomy::{PrivacyPoint, PrivacyTuple, PurposeLattice};
use std::hint::black_box;

/// A purpose hierarchy: billing ⊑ operations ⊑ any; ads ⊑ marketing ⊑ any.
fn lattice() -> PurposeLattice {
    let mut l = PurposeLattice::new();
    l.add_edge("billing", "operations").unwrap();
    l.add_edge("operations", "any").unwrap();
    l.add_edge("ads", "marketing").unwrap();
    l.add_edge("marketing", "any").unwrap();
    l
}

/// Providers consent to *broad* purposes; the policy uses *narrow* ones, so
/// flat matching sees implicit deny-alls everywhere while the lattice sees
/// coverage.
fn population(n: u64) -> Vec<ProviderProfile> {
    (0..n)
        .map(|i| {
            let mut p = ProviderProfile::new(ProviderId(i), 100);
            let mut prefs = ProviderPreferences::new(ProviderId(i));
            for attr in ["weight", "age", "income"] {
                prefs.add(
                    attr,
                    PrivacyTuple::from_point("operations", PrivacyPoint::from_raw(3, 3, 5)),
                );
                prefs.add(
                    attr,
                    PrivacyTuple::from_point("marketing", PrivacyPoint::from_raw(2, 2, 3)),
                );
            }
            p.preferences = prefs;
            p
        })
        .collect()
}

fn policy() -> HousePolicy {
    let mut hp = HousePolicy::new("narrow-purposes");
    for attr in ["weight", "age", "income"] {
        hp.add(
            attr,
            PrivacyTuple::from_point("billing", PrivacyPoint::from_raw(2, 2, 3)),
        );
        hp.add(
            attr,
            PrivacyTuple::from_point("ads", PrivacyPoint::from_raw(2, 2, 3)),
        );
    }
    hp
}

fn bench_matchers(c: &mut Criterion) {
    let pop = population(1_000);
    let hp = policy();
    let lat = lattice();
    let attrs = ["weight", "age", "income"];

    // Report the semantic difference once.
    let flat_violations: usize = pop
        .iter()
        .map(|p| witnesses(&p.preferences, &hp, &attrs).len())
        .sum();
    let lattice_violations: usize = pop
        .iter()
        .map(|p| witnesses_lattice(&p.preferences, &hp, &attrs, &lat).len())
        .sum();
    eprintln!(
        "[A2] violation witnesses over {} providers: flat = {flat_violations}, \
         lattice = {lattice_violations} (lattice removes {})",
        pop.len(),
        flat_violations - lattice_violations
    );

    c.bench_function("purpose_matching/flat", |b| {
        b.iter(|| {
            for p in &pop {
                black_box(witnesses(&p.preferences, &hp, &attrs));
            }
        });
    });
    c.bench_function("purpose_matching/lattice", |b| {
        b.iter(|| {
            for p in &pop {
                black_box(witnesses_lattice(&p.preferences, &hp, &attrs, &lat));
            }
        });
    });
}

criterion_group!(benches, bench_matchers);
criterion_main!(benches);
