//! A1 (ablation): incremental violation maintenance vs full re-audit.
//!
//! DESIGN.md calls out delta maintenance as a design choice: when the house
//! edits one attribute's policy, the incremental auditor recomputes only the
//! affected `(attribute, purpose)` groups (`O(n·k)`), while the baseline
//! re-audits everything (`O(n·m)`). This bench measures both for a
//! one-attribute change over an 8-attribute policy, so the expected gap is
//! roughly the attribute fan-in (~8×, minus fixed costs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qpv_core::incremental::IncrementalAuditor;
use qpv_core::AuditEngine;
use qpv_policy::HousePolicy;
use qpv_synth::population::{generate, AttributeSpec, PopulationSpec};
use qpv_synth::SegmentMix;
use qpv_taxonomy::{Dim, PrivacyPoint, PrivacyTuple};
use std::hint::black_box;

fn spec() -> PopulationSpec {
    PopulationSpec {
        attributes: (0..8)
            .map(|i| {
                AttributeSpec::new(
                    format!("attr{i}"),
                    1 + (i % 4) as u32,
                    PrivacyPoint::from_raw(2, 2, 3),
                    (0, 100),
                )
            })
            .collect(),
        purposes: vec!["service".into(), "research".into()],
        mix: SegmentMix::WESTIN_2001,
    }
}

/// Widen only `attr0`'s granularity by one step.
fn one_attribute_change(base: &HousePolicy) -> HousePolicy {
    let mut hp = HousePolicy::new("changed");
    for t in base.tuples() {
        let point = if t.attribute == "attr0" {
            t.tuple
                .point
                .with(Dim::Granularity, t.tuple.point.get(Dim::Granularity) + 1)
        } else {
            t.tuple.point
        };
        hp.add(
            &t.attribute,
            PrivacyTuple::from_point(t.tuple.purpose.clone(), point),
        );
    }
    hp
}

fn bench_policy_change(c: &mut Criterion) {
    let mut group = c.benchmark_group("policy_change");
    group.sample_size(20);
    for n in [1_000usize, 5_000] {
        let spec = spec();
        let pop = generate(&spec, n, 7);
        let base = spec.baseline_policy("base");
        let changed = one_attribute_change(&base);

        // Baseline: full re-audit with the new policy.
        let engine = AuditEngine::new(
            base.clone(),
            spec.attribute_names(),
            spec.attribute_weights(),
        );
        group.bench_with_input(BenchmarkId::new("full_reaudit", n), &n, |b, _| {
            b.iter(|| black_box(engine.run_with_policy(&pop.profiles, &changed)));
        });

        // Incremental: apply the delta, then revert (each iteration does
        // symmetric work and state stays consistent across iterations).
        let mut auditor = IncrementalAuditor::new(
            pop.profiles.clone(),
            spec.attribute_names(),
            &spec.attribute_weights(),
            base.clone(),
        );
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter(|| {
                auditor.apply_policy(changed.clone());
                black_box(auditor.total_violations());
                auditor.apply_policy(base.clone());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_policy_change);
criterion_main!(benches);
