//! P12: the packed-lane, row-deduplicated population at millions scale.
//!
//! Three questions about the PR 7 layout, on a segment-clustered
//! healthcare population (preference/sensitivity content drawn from a
//! small template pool per Westin segment, thresholds individual — the
//! shape `qpv_synth::stream_clustered` models):
//!
//! 1. **Memory** — streaming-compile 10M providers straight off the
//!    generator iterator (no profile `Vec` is ever held) and report
//!    resident bytes/provider, the unique-row dedup ratio, and build
//!    throughput as JSON metrics. Acceptance: < 64 bytes/provider.
//! 2. **Counts throughput** — the branch-free packed counts pass over
//!    10M providers (each unique row scored once, aggregated by
//!    multiplicity; the only O(N) leg is the per-occurrence threshold
//!    compare).
//! 3. **K-policy sweep** — `audit_many_policies` at 10M, the Eq. 31
//!    what-if shape, sharing one packed scratch across 8 policies.
//!
//! Correctness: in smoke mode the whole (small) population is pinned
//! against `run_reference`; at full size a 100k-provider prefix of the
//! same stream is pinned against `run_reference`, and every timed sample
//! re-asserts its aggregates against the precomputed outcome.
//!
//! Emit JSON with: `QPV_BENCH_JSON=BENCH_packed_population.json \
//!     cargo bench -p qpv-bench --bench packed_population`

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use qpv_core::{CompiledPopulation, PopulationBuilder, ProviderProfile};
use qpv_synth::population::stream_clustered;
use qpv_synth::Scenario;
use std::hint::black_box;

const N: usize = 10_000_000;
const TEMPLATES_PER_SEGMENT: usize = 32; // ≤ 96 unique rows at any scale
const SEED: u64 = 42;
const K_POLICIES: usize = 8;

fn smoke() -> bool {
    std::env::var("QPV_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

fn bench_packed_population(c: &mut Criterion) {
    let n = qpv_bench::bench_n(N);
    let scenario = Scenario::healthcare(64, SEED); // spec donor
    let spec = &scenario.spec;
    let engine = scenario.engine();

    // Streaming build: generator iterator → builder, one profile at a
    // time. Timed manually (a bencher loop would re-run the 10M build
    // per sample); throughput and layout metrics land in the JSON.
    let start = Instant::now();
    let mut builder = PopulationBuilder::new();
    for p in stream_clustered(spec, n, SEED, TEMPLATES_PER_SEGMENT) {
        builder.push_profile(&p);
    }
    let pop = builder.finish();
    let build = start.elapsed().as_secs_f64();
    let bytes_per_provider = pop.resident_bytes() as f64 / pop.len().max(1) as f64;
    c.record_metric("pop/packed_10m/providers", n as f64, "providers");
    c.record_metric("pop/packed_10m/build_seconds", build, "s");
    c.record_metric(
        "pop/packed_10m/build_throughput",
        n as f64 / build.max(1e-9),
        "providers/s",
    );
    c.record_metric(
        "pop/packed_10m/bytes_per_provider",
        bytes_per_provider,
        "bytes",
    );
    c.record_metric("pop/packed_10m/dedup_ratio", pop.dedup_ratio(), "x");
    c.record_metric(
        "pop/packed_10m/unique_rows",
        pop.unique_row_count() as f64,
        "rows",
    );
    if !smoke() {
        // The acceptance bar. At smoke sizes the fixed table overhead
        // dominates and the ratio is meaningless, so only assert at scale.
        assert!(
            bytes_per_provider < 64.0,
            "{bytes_per_provider:.1} bytes/provider ≥ 64"
        );
        assert!(pop.dedup_ratio() > 1000.0, "clustered population dedups");
    }

    // Oracle: the string-path reference over the stream prefix (the
    // whole stream in smoke mode). The packed pass must reproduce its
    // aggregates exactly.
    let oracle_n = if smoke() { n } else { 100_000.min(n) };
    let prefix: Vec<ProviderProfile> =
        stream_clustered(spec, oracle_n, SEED, TEMPLATES_PER_SEGMENT).collect();
    let reference = engine.run_reference(&prefix);
    let prefix_pop = CompiledPopulation::from_profiles(&prefix);
    let prefix_counts = engine.counts(&prefix_pop);
    assert_eq!(prefix_counts.total_violations, reference.total_violations);
    assert_eq!(
        prefix_counts.violated,
        reference.providers.iter().filter(|p| p.violated).count()
    );
    assert_eq!(
        prefix_counts.defaulted,
        reference.providers.iter().filter(|p| p.defaulted).count()
    );
    drop(prefix);
    drop(prefix_pop);

    // Per-sample oracle for the full-size passes.
    let expected = engine.counts(&pop);
    let policies: Vec<_> = (0..K_POLICIES as u32)
        .map(|s| engine.policy.widened_uniform(s))
        .collect();
    let expected_sweep = engine.audit_many_policies(&pop, &policies);

    let mut group = c.benchmark_group("pop/packed_10m");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("counts", |b| {
        b.iter(|| {
            let counts = engine.counts(black_box(&pop));
            assert_eq!(counts, expected);
            black_box(counts)
        });
    });
    group.bench_function(format!("sweep_k{K_POLICIES}"), |b| {
        b.iter(|| {
            let outcomes = engine.audit_many_policies(black_box(&pop), &policies);
            assert_eq!(outcomes, expected_sweep);
            black_box(outcomes)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_packed_population);
criterion_main!(benches);
