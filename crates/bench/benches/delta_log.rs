//! P11: durable delta-log group commit and crash recovery vs full rescan.
//!
//! The delta log exists so a restarted monitor pays `O(snapshot + tail)`
//! instead of re-scanning the store. This bench prices all three sides of
//! that trade at N = 100k providers:
//!
//! * `delta_log/commit/{b}` — group-commit throughput: frame `b`
//!   single-op deltas and fsync them as one batch (one `sync_data` per
//!   measurement element group). Larger batches amortise the fsync.
//! * `delta_log/recover/{tail}` — full crash recovery
//!   ([`DeltaLog::recover`]): decode the generation snapshot (the compiled
//!   population's SoA arrays, bulk fixed-width reads) and replay a `tail`
//!   of committed deltas through `CompiledPopulation::apply_delta`, for
//!   tail ∈ {0, 100, 1000}.
//! * `delta_log/rescan` — what recovery replaced: rebuild the same
//!   compiled population by re-reading every profile out of the Ppdb
//!   (`all_profiles`) and recompiling. The recover/1000 : rescan ratio is
//!   the paper point — EXPERIMENTS.md P11 records it (the acceptance bar
//!   is ≥ 20×).
//!
//! Before timing, the recovered population is asserted
//! audit-report-identical to a fresh compile + audit of the oracle-mutated
//! profiles; every recover sample re-asserts the replayed tail length.
//!
//! Emit JSON with: `QPV_BENCH_JSON=BENCH_delta_log.json \
//!     cargo bench -p qpv-bench --bench delta_log`

use std::path::PathBuf;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qpv_core::deltalog::DeltaLog;
use qpv_core::{CompiledPopulation, Ppdb, PpdbConfig};
use qpv_reldb::Database;
use qpv_synth::workload::churn_batches;
use qpv_synth::Scenario;
use std::hint::black_box;

const N: usize = 100_000;
const COMMIT_BATCHES: [usize; 3] = [1, 8, 64];
const TAILS: [usize; 3] = [0, 100, 1_000];

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qpv-bench-deltalog-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bench_delta_log(c: &mut Criterion) {
    let n = qpv_bench::bench_n(N);
    let scenario = Scenario::healthcare(n, 42);
    let spec = &scenario.spec;
    let engine = scenario.engine();
    let initial = &scenario.population.profiles;
    let pop = CompiledPopulation::from_profiles(initial);

    let mut group = c.benchmark_group("delta_log");
    group.sample_size(10);

    // -- Group-commit throughput ------------------------------------------
    // A pool of single-op churn deltas, framed `b` at a time per fsync.
    let pool = churn_batches(spec, n, 1_024.min(n), 1, 7);
    for b in COMMIT_BATCHES {
        let dir = temp_dir(&format!("commit-{b}"));
        let mut log = DeltaLog::create(&dir, &pop).expect("create log");
        let mut next = 0usize;
        group.throughput(Throughput::Elements(b as u64));
        group.bench_with_input(BenchmarkId::new("commit", b), &b, |bench, _| {
            bench.iter(|| {
                for _ in 0..b {
                    log.append(black_box(&pool[next % pool.len()]));
                    next += 1;
                }
                log.sync().expect("group commit");
            });
        });
        drop(log);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // -- Recovery latency vs tail length ----------------------------------
    group.throughput(Throughput::Elements(n as u64));
    for tail in TAILS {
        let tail = tail.min(n); // smoke mode shrinks the population too
        let dir = temp_dir(&format!("recover-{tail}"));
        let mut log = DeltaLog::create(&dir, &pop).expect("create log");
        let deltas = churn_batches(spec, n, tail, 1, 99);
        let mut mutated = initial.clone();
        for delta in &deltas {
            log.append(delta);
            delta.apply_to_profiles(&mut mutated);
        }
        log.sync().expect("commit tail");
        drop(log);

        // Oracle: recovery lands audit-identical to a fresh compile of the
        // oracle-mutated profiles.
        let (_, rec) = DeltaLog::recover(&dir).expect("recover");
        assert_eq!(rec.deltas_replayed as usize, deltas.len());
        assert_eq!(
            serde_json::to_string(&engine.audit_compiled(&rec.population)).unwrap(),
            serde_json::to_string(
                &engine.audit_compiled(&CompiledPopulation::from_profiles(&mutated))
            )
            .unwrap(),
            "tail={tail}: recovered audit diverged from fresh compile"
        );

        let expected_deltas = deltas.len() as u64;
        group.bench_with_input(BenchmarkId::new("recover", tail), &tail, |bench, _| {
            bench.iter(|| {
                let (_, rec) = DeltaLog::recover(black_box(&dir)).expect("recover");
                assert_eq!(rec.deltas_replayed, expected_deltas);
                black_box(rec.population.len())
            });
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    // -- The rescan recovery replaces -------------------------------------
    let mut ppdb = Ppdb::create(
        Database::in_memory(),
        PpdbConfig::new("patients", "provider_id"),
        scenario.data_schema(),
    )
    .expect("create ppdb");
    ppdb.set_policy(&scenario.baseline_policy).expect("policy");
    for attr in &spec.attributes {
        ppdb.set_attribute_weight(&attr.name, attr.weight)
            .expect("weight");
    }
    for (profile, row) in initial.iter().zip(&scenario.population.data_rows) {
        ppdb.register_provider(profile, row.clone())
            .expect("register");
    }
    group.bench_function("rescan", |bench| {
        bench.iter(|| {
            let profiles = ppdb.all_profiles().expect("scan");
            assert_eq!(profiles.len(), n);
            black_box(CompiledPopulation::from_profiles(&profiles).len())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_delta_log);
criterion_main!(benches);
