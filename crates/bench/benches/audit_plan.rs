//! P7: compiled audit plans vs the string-resolving reference path.
//!
//! The plan compiles the policy once (symbol interning, pre-resolved
//! weights, precomputed lattice coverage) and audits every provider with
//! zero string hashing in the inner loop; the reference path re-resolves
//! attribute and purpose strings per `(provider, policy tuple)` pair. Both
//! legs are measured single-threaded at 100k providers — uniform and with
//! one ~100×-skewed provider — and every sample asserts the two reports
//! stay identical.
//!
//! Emit JSON with: `QPV_BENCH_JSON=BENCH_audit_plan.json \
//!     cargo bench -p qpv-bench --bench audit_plan`

use std::num::NonZeroUsize;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qpv_synth::population::par_generate;
use qpv_synth::Scenario;
use qpv_taxonomy::{PrivacyPoint, PrivacyTuple};
use std::hint::black_box;

const N: usize = 100_000;

/// Blow up the middle provider's preference list to ~100× the average
/// (the healthcare spec states ~6 tuples per provider).
fn skew(profiles: &mut [qpv_core::ProviderProfile]) {
    let victim = profiles.len() / 2;
    for i in 0..600u32 {
        profiles[victim].preferences.add(
            "weight",
            PrivacyTuple::from_point(
                "care",
                PrivacyPoint::from_raw(1 + (i % 4), 2, 30 + (i % 60)),
            ),
        );
    }
}

fn bench_audit_plan(c: &mut Criterion) {
    let n = qpv_bench::bench_n(N);
    let scenario = Scenario::healthcare(64, 42); // spec donor
    let uniform = par_generate(
        &scenario.spec,
        n,
        42,
        NonZeroUsize::new(4).expect("nonzero"),
    );
    let mut skewed_profiles = uniform.profiles.clone();
    skew(&mut skewed_profiles);
    let engine = scenario.engine();

    let mut group = c.benchmark_group("audit_plan");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    for (shape, profiles) in [("uniform", &uniform.profiles), ("skewed", &skewed_profiles)] {
        let expected = engine.run_reference(profiles).total_violations;
        group.bench_with_input(BenchmarkId::new("string", shape), profiles, |b, p| {
            b.iter(|| {
                let report = engine.run_reference(black_box(p));
                assert_eq!(report.total_violations, expected);
                black_box(report)
            });
        });
        group.bench_with_input(BenchmarkId::new("compiled", shape), profiles, |b, p| {
            b.iter(|| {
                let report = engine.run(black_box(p));
                assert_eq!(report.total_violations, expected);
                black_box(report)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_audit_plan);
criterion_main!(benches);
