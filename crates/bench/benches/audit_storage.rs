//! A3 (ablation): indexed vs scanned access to privacy metadata.
//!
//! The PPDB stores preferences in `_qpv_prefs` with a B+tree on `provider`.
//! This bench measures the point lookup "one provider's preferences" both
//! through the index and through a forced sequential scan, at growing table
//! sizes — the classic index crossover, exercised on the engine this
//! reproduction actually ships. It also measures a full storage-backed
//! audit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qpv_core::{Ppdb, PpdbConfig};
use qpv_reldb::Database;
use qpv_synth::Scenario;
use std::hint::black_box;

fn build_ppdb(n: usize) -> Ppdb {
    let scenario = Scenario::healthcare(n, 5);
    let mut ppdb = Ppdb::create(
        Database::in_memory(),
        PpdbConfig::new("patients", "provider_id"),
        scenario.data_schema(),
    )
    .unwrap();
    ppdb.set_policy(&scenario.baseline_policy).unwrap();
    for attr in &scenario.spec.attributes {
        ppdb.set_attribute_weight(&attr.name, attr.weight).unwrap();
    }
    for (profile, row) in scenario
        .population
        .profiles
        .iter()
        .zip(&scenario.population.data_rows)
    {
        ppdb.register_provider(profile, row.clone()).unwrap();
    }
    ppdb
}

fn bench_point_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefs_lookup");
    group.sample_size(30);
    for n in [500usize, 2_000, 8_000] {
        let mut ppdb = build_ppdb(n);
        let target = (n / 2) as i64;

        // Indexed: the binder picks the `_qpv_prefs_provider` index for the
        // equality predicate.
        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, _| {
            b.iter(|| {
                let rs = ppdb
                    .db_mut()
                    .query(&format!(
                        "SELECT attribute FROM _qpv_prefs WHERE provider = {target}"
                    ))
                    .unwrap();
                black_box(rs.len());
            });
        });

        // Scanned: an arithmetic predicate the binder cannot turn into
        // index bounds, selecting the same rows.
        group.bench_with_input(BenchmarkId::new("scanned", n), &n, |b, _| {
            b.iter(|| {
                let rs = ppdb
                    .db_mut()
                    .query(&format!(
                        "SELECT attribute FROM _qpv_prefs WHERE provider + 0 = {target}"
                    ))
                    .unwrap();
                black_box(rs.len());
            });
        });
    }
    group.finish();
}

fn bench_storage_backed_audit(c: &mut Criterion) {
    let mut group = c.benchmark_group("audit/from_storage");
    group.sample_size(10);
    for n in [500usize, 2_000] {
        let mut ppdb = build_ppdb(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(ppdb.audit().unwrap()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_point_lookup, bench_storage_backed_audit);
criterion_main!(benches);
