//! P10: delta maintenance versus full rebuild.
//!
//! The question the delta pipeline exists to answer: with a live
//! [`IncrementalAuditor`] over N providers, what does absorbing k
//! population mutations cost compared to recompiling the population and
//! re-auditing from scratch? One `churn` workload per k (upserts, joins,
//! departures, preference/sensitivity/threshold edits), at N=100k and
//! k ∈ {1, 100, 10k}:
//!
//! * `delta/apply/{k}` — a long-lived auditor re-applies the same delta
//!   each sample. The mutated state is a fixed point of the delta (churn
//!   never resurrects a removed id), so every application after the first
//!   leaves the auditor byte-identical — the loop measures the steady-state
//!   O(changed) re-score. Removals degrade to no-ops in the steady state,
//!   slightly *under*-working that leg relative to a first application;
//!   their real cost is O(1) swap-removes, so the comparison is fair at
//!   the reported precision.
//! * `delta/rebuild/{k}` — compile the mutated profiles into a fresh
//!   population and build a fresh auditor over it (the pre-delta way to
//!   track churn), every sample.
//!
//! Before timing, the delta-applied auditor is asserted outcome-equal to
//! the fresh rebuild (the `delta_equivalence.rs` property suite pins the
//! deeper byte-identity), and every sample re-asserts `Violations`.
//!
//! Emit JSON with: `QPV_BENCH_JSON=BENCH_delta_audit.json \
//!     cargo bench -p qpv-bench --bench delta_audit`

use std::num::NonZeroUsize;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qpv_core::{CompiledPopulation, IncrementalAuditor};
use qpv_synth::population::par_generate;
use qpv_synth::workload::churn;
use qpv_synth::Scenario;
use std::hint::black_box;

const N: usize = 100_000;
const K_DELTAS: [usize; 3] = [1, 100, 10_000];

fn bench_delta_vs_rebuild(c: &mut Criterion) {
    let n = qpv_bench::bench_n(N);
    let scenario = Scenario::healthcare(64, 42); // spec donor
    let population = par_generate(
        &scenario.spec,
        n,
        42,
        NonZeroUsize::new(4).expect("nonzero"),
    );
    let engine = scenario.engine();
    let attrs = scenario.spec.attribute_names();
    let weights = scenario.spec.attribute_weights();
    let base = IncrementalAuditor::from_population(
        CompiledPopulation::from_profiles(&population.profiles),
        attrs.clone(),
        &weights,
        engine.policy.clone(),
    );

    let mut group = c.benchmark_group("delta");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    for k in K_DELTAS {
        let delta = churn(&scenario.spec, n, k, 99);
        let mut mutated = population.profiles.clone();
        delta.apply_to_profiles(&mut mutated);
        let expected = IncrementalAuditor::from_population(
            CompiledPopulation::from_profiles(&mutated),
            attrs.clone(),
            &weights,
            engine.policy.clone(),
        )
        .outcome();

        // Oracle: a first application lands exactly on the rebuilt state.
        let mut live = base.clone();
        live.apply_delta(&delta).expect("unique-id population");
        assert_eq!(live.outcome(), expected, "k={k}");

        // Steady state: re-applying the delta is a fixed point, so the
        // timed region is pure delta absorption, no per-sample clone.
        group.bench_with_input(BenchmarkId::new("apply", k), &k, |b, _| {
            b.iter(|| {
                live.apply_delta(black_box(&delta)).expect("fixed point");
                let outcome = live.outcome();
                assert_eq!(outcome.total_violations, expected.total_violations);
                black_box(outcome)
            });
        });

        // What tracking the same churn cost before the delta pipeline:
        // recompile the mutated population and rebuild the auditor.
        group.bench_with_input(BenchmarkId::new("rebuild", k), &k, |b, _| {
            b.iter(|| {
                let pop = CompiledPopulation::from_profiles(black_box(&mutated));
                let rebuilt = IncrementalAuditor::from_population(
                    pop,
                    attrs.clone(),
                    &weights,
                    engine.policy.clone(),
                );
                let outcome = rebuilt.outcome();
                assert_eq!(outcome.total_violations, expected.total_violations);
                black_box(outcome)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_delta_vs_rebuild);
criterion_main!(benches);
