//! P9: the compiled structure-of-arrays population.
//!
//! Four questions, all at 100k providers:
//!
//! 1. **Single-thread speedup** — the per-profile compiled-plan path (PR 2's
//!    fastest leg, kept as `run_per_profile`) versus one pass over a
//!    pre-built [`CompiledPopulation`], full-report and counts-only.
//! 2. **Build cost** — what compiling the population once actually costs,
//!    the denominator of every amortization claim.
//! 3. **Thread sweep** — `par_audit_compiled` over the shared population
//!    with pooled scratches.
//! 4. **K-policy amortization** — a what-if sweep over K candidate policies
//!    as K independent full audits versus one compile + K counts-only
//!    passes (`audit_many_policies`, the Eq. 31 sweep shape). The compiled
//!    leg re-builds the population inside the timed region, so the curve
//!    shows the build amortizing away as K grows.
//!
//! Every sample asserts its report/counts against the string-path oracle.
//!
//! Emit JSON with: `QPV_BENCH_JSON=BENCH_compiled_population.json \
//!     cargo bench -p qpv-bench --bench compiled_population`

use std::num::NonZeroUsize;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qpv_core::CompiledPopulation;
use qpv_synth::population::par_generate;
use qpv_synth::Scenario;
use std::hint::black_box;

const N: usize = 100_000;
const K_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn bench_single_thread(c: &mut Criterion) {
    let n = qpv_bench::bench_n(N);
    let scenario = Scenario::healthcare(64, 42); // spec donor
    let population = par_generate(
        &scenario.spec,
        n,
        42,
        NonZeroUsize::new(4).expect("nonzero"),
    );
    let engine = scenario.engine();
    let pop = CompiledPopulation::from_profiles(&population.profiles);
    let oracle = engine.run_reference(&population.profiles);

    let mut group = c.benchmark_group("pop");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    // PR 2's fastest single-threaded leg: compiled plan, per-profile
    // indexing, witnesses allocated per violation.
    group.bench_function("per_profile", |b| {
        b.iter(|| {
            let report = engine.run_per_profile(black_box(&population.profiles));
            assert_eq!(report.total_violations, oracle.total_violations);
            black_box(report)
        });
    });
    // One pass over the pre-built population, full report.
    group.bench_function("compiled_full", |b| {
        b.iter(|| {
            let report = engine.audit_compiled(black_box(&pop));
            assert_eq!(report, oracle);
            black_box(report)
        });
    });
    // Counts-only fast path: zero heap per provider.
    group.bench_function("compiled_counts", |b| {
        b.iter(|| {
            let counts = engine.counts(black_box(&pop));
            assert_eq!(counts.total_violations, oracle.total_violations);
            black_box(counts)
        });
    });
    // The amortized-away cost: compiling the population itself.
    group.bench_function("build", |b| {
        b.iter(|| {
            black_box(CompiledPopulation::from_profiles(black_box(
                &population.profiles,
            )))
        });
    });
    group.finish();

    // Thread counts above what the scheduler will actually grant are
    // skipped (and recorded as such in the JSON): on a pinned 1-CPU
    // container the 2/4/8 legs would only measure oversubscription noise
    // and plot a flat-by-construction "scaling" curve.
    let avail = criterion::threads_available();
    let mut group = c.benchmark_group("pop/parallel");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    for threads in [1usize, 2, 4, 8].into_iter().filter(|&t| t <= avail) {
        let nz = NonZeroUsize::new(threads).expect("nonzero");
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, _| {
            b.iter(|| {
                let report = engine
                    .par_audit_compiled(black_box(&pop), nz)
                    .expect("no fault injection in benchmarks");
                assert_eq!(report.total_violations, oracle.total_violations);
                black_box(report)
            });
        });
    }
    group.finish();
    for threads in [1usize, 2, 4, 8].into_iter().filter(|&t| t > avail) {
        c.record_skip(
            format!("pop/parallel/threads/{threads}"),
            format!("above threads_available ({avail})"),
        );
    }
}

fn bench_policy_sweep(c: &mut Criterion) {
    let n = qpv_bench::bench_n(N);
    let scenario = Scenario::healthcare(64, 42);
    let population = par_generate(
        &scenario.spec,
        n,
        42,
        NonZeroUsize::new(4).expect("nonzero"),
    );
    let engine = scenario.engine();
    let policies: Vec<_> = (0..K_SWEEP[K_SWEEP.len() - 1] as u32)
        .map(|s| engine.policy.widened_uniform(s))
        .collect();
    let expected: Vec<u128> = policies
        .iter()
        .map(|p| {
            engine
                .run_with_policy(&population.profiles, p)
                .total_violations
        })
        .collect();

    let mut group = c.benchmark_group("whatif");
    group.sample_size(10);
    for k in K_SWEEP {
        // K independent full audits over raw profiles.
        group.bench_with_input(BenchmarkId::new("naive", k), &k, |b, &k| {
            b.iter(|| {
                for (p, want) in policies[..k].iter().zip(&expected) {
                    let report = engine.run_with_policy(black_box(&population.profiles), p);
                    assert_eq!(report.total_violations, *want);
                    black_box(report);
                }
            });
        });
        // One population compile (inside the timed region) + K counts-only
        // passes.
        group.bench_with_input(BenchmarkId::new("compiled", k), &k, |b, &k| {
            b.iter(|| {
                let pop = CompiledPopulation::from_profiles(black_box(&population.profiles));
                let outcomes = engine.audit_many_policies(&pop, &policies[..k]);
                for (o, want) in outcomes.iter().zip(&expected) {
                    assert_eq!(o.total_violations, *want);
                }
                black_box(outcomes)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_thread, bench_policy_sweep);
criterion_main!(benches);
