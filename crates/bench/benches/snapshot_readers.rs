//! P13: snapshot-isolated readers vs writer latency.
//!
//! PR 8's LSN-snapshot readers promise that audits under live writes are
//! (a) never blocked by the writer and (b) nearly free *for* the writer:
//! a reader resolves page versions `<= snapshot_lsn` against the version
//! store's immutable `Arc` images, so the only shared state the writer
//! touches on its behalf is the short version-store mutex during publish.
//! This bench prices that promise on a durable (on-disk WAL) database:
//!
//! * `snapshot_readers/writer_commit/readers/{r}` — median autocommit
//!   UPDATE latency (WAL fsync + version publish) while `r` reader
//!   threads continuously cut snapshots and scan the table.
//! * `snapshot_readers/begin_snapshot` — the reader-side cost of cutting
//!   a snapshot (register + catalog resolve, no locking of the writer).
//! * metrics `writer_p50_ns/readers/{r}` and `writer_p99_ns/readers/{r}`
//!   — full-distribution writer latency from a fixed 300-write run, the
//!   numbers the acceptance bar ("within 2× of the reader-free
//!   baseline") reads. `writer_p99_ratio_vs_baseline/readers/{r}` is the
//!   derived ratio; `reader_snapshots_per_sec/readers/{r}` shows the
//!   concurrent read traffic the writer absorbed.
//!
//! Reader counts above `threads_available() - 1` (the writer needs a
//! core too) are recorded as skips, not measured flat — on a 1-CPU
//! container only the `readers/0` baseline runs.
//!
//! Every reader iteration asserts snapshot sanity: a scan either
//! succeeds with the full row count (readers race no deletes here) or
//! fails with the *typed* `SnapshotTooOld` reclamation error — anything
//! else panics the bench.
//!
//! Emit JSON with: `QPV_BENCH_JSON=BENCH_snapshot_readers.json \
//!     cargo bench -p qpv-bench --bench snapshot_readers`

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qpv_reldb::error::DbError;
use qpv_reldb::{Database, SharedDatabase};
use std::hint::black_box;

const N_ROWS: usize = 2_000;
const READERS: [usize; 4] = [0, 1, 2, 4];
/// Writes per latency distribution (plus warmup) — small enough for
/// smoke mode, large enough that p99 is the 3rd-worst sample.
const DIST_WRITES: usize = 300;
const WARMUP_WRITES: usize = 50;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qpv-bench-snap-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn seeded(dir: &PathBuf, rows: usize) -> SharedDatabase {
    let mut db = Database::open(dir).expect("open bench db");
    db.execute("CREATE TABLE people (id INT, v INT)")
        .expect("create");
    // Bulk-load in one transaction so setup is one sync, not `rows`.
    db.begin().expect("begin");
    for chunk in (0..rows).collect::<Vec<_>>().chunks(256) {
        let values: Vec<String> = chunk.iter().map(|i| format!("({i}, 0)")).collect();
        db.execute(&format!("INSERT INTO people VALUES {}", values.join(", ")))
            .expect("seed rows");
    }
    db.commit().expect("commit seed");
    SharedDatabase::new(db)
}

/// Spawn `r` reader threads that cut snapshots and scan until `stop`.
/// Returns join handles; `snapshots` counts completed reads.
fn spawn_readers(
    shared: &SharedDatabase,
    r: usize,
    rows: usize,
    stop: &Arc<AtomicBool>,
    snapshots: &Arc<AtomicU64>,
) -> Vec<std::thread::JoinHandle<()>> {
    (0..r)
        .map(|_| {
            let shared = shared.clone();
            let stop = Arc::clone(stop);
            let snapshots = Arc::clone(snapshots);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match shared
                        .begin_snapshot()
                        .and_then(|snap| snap.count("people"))
                    {
                        Ok(n) => {
                            assert_eq!(n, rows, "snapshot must see a committed row count");
                            snapshots.fetch_add(1, Ordering::Relaxed);
                        }
                        // Typed reclamation is the one legal failure.
                        Err(DbError::SnapshotTooOld { .. }) => {}
                        Err(e) => panic!("reader failed untyped: {e}"),
                    }
                }
            })
        })
        .collect()
}

fn percentile_ns(sorted: &[u128], p: f64) -> f64 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx] as f64
}

fn bench_snapshot_readers(c: &mut Criterion) {
    let rows = qpv_bench::bench_n(N_ROWS);
    // The writer needs a core of its own; oversubscribed reader counts
    // would measure scheduler contention, not snapshot overhead.
    let avail = criterion::threads_available().saturating_sub(1);

    // -- Reader-side: what a snapshot cut costs ---------------------------
    {
        let dir = temp_dir("begin");
        let shared = seeded(&dir, rows);
        let mut group = c.benchmark_group("snapshot_readers");
        group.sample_size(10);
        group.bench_function("begin_snapshot", |b| {
            b.iter(|| {
                let snap = shared.begin_snapshot().expect("begin_snapshot");
                black_box(snap.lsn())
            });
        });
        group.finish();
        let _ = std::fs::remove_dir_all(&dir);
    }

    // -- Writer latency under 0..N concurrent readers ---------------------
    let mut baseline_p99 = None;
    for r in READERS.into_iter().filter(|&r| r <= avail) {
        let dir = temp_dir(&format!("w{r}"));
        let shared = seeded(&dir, rows);
        let stop = Arc::new(AtomicBool::new(false));
        let snapshots = Arc::new(AtomicU64::new(0));
        let readers = spawn_readers(&shared, r, rows, &stop, &snapshots);

        // Median via the harness (lands in "results")...
        let mut group = c.benchmark_group("snapshot_readers");
        group.sample_size(10);
        let mut k = 0usize;
        group.bench_with_input(BenchmarkId::new("writer_commit/readers", r), &r, |b, _| {
            b.iter(|| {
                k = (k + 1) % rows;
                shared
                    .execute(&format!("UPDATE people SET v = v + 1 WHERE id = {k}"))
                    .expect("autocommit update")
            });
        });
        group.finish();

        // ...then the full distribution for p50/p99 (lands in "metrics").
        for i in 0..WARMUP_WRITES {
            shared
                .execute(&format!(
                    "UPDATE people SET v = v + 1 WHERE id = {}",
                    i % rows
                ))
                .expect("warmup update");
        }
        let window = Instant::now();
        let read_before = snapshots.load(Ordering::Relaxed);
        let mut lat_ns: Vec<u128> = Vec::with_capacity(DIST_WRITES);
        for i in 0..DIST_WRITES {
            let t = Instant::now();
            shared
                .execute(&format!(
                    "UPDATE people SET v = v + 1 WHERE id = {}",
                    i % rows
                ))
                .expect("measured update");
            lat_ns.push(t.elapsed().as_nanos());
        }
        let wall = window.elapsed().as_secs_f64();
        let reads = snapshots.load(Ordering::Relaxed) - read_before;
        stop.store(true, Ordering::Relaxed);
        for handle in readers {
            handle.join().expect("reader thread");
        }

        lat_ns.sort_unstable();
        let p50 = percentile_ns(&lat_ns, 0.50);
        let p99 = percentile_ns(&lat_ns, 0.99);
        c.record_metric(
            format!("snapshot_readers/writer_p50_ns/readers/{r}"),
            p50,
            "ns",
        );
        c.record_metric(
            format!("snapshot_readers/writer_p99_ns/readers/{r}"),
            p99,
            "ns",
        );
        if r == 0 {
            baseline_p99 = Some(p99);
        } else {
            if let Some(base) = baseline_p99 {
                c.record_metric(
                    format!("snapshot_readers/writer_p99_ratio_vs_baseline/readers/{r}"),
                    p99 / base.max(1.0),
                    "x",
                );
            }
            c.record_metric(
                format!("snapshot_readers/reader_snapshots_per_sec/readers/{r}"),
                reads as f64 / wall.max(1e-9),
                "snapshots/s",
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    for r in READERS.into_iter().filter(|&r| r > avail) {
        c.record_skip(
            format!("snapshot_readers/writer_commit/readers/{r}"),
            format!("above threads_available - 1 ({avail})"),
        );
    }
}

criterion_group!(benches, bench_snapshot_readers);
criterion_main!(benches);
