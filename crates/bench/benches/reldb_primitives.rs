//! P2: storage-engine primitives.
//!
//! Microbenchmarks of the substrate: row codec, slotted-page insert, B+tree
//! operations, SQL insert/scan through the full stack, and crash recovery
//! (WAL replay + index rebuild) via a real reopen.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use qpv_reldb::btree::BTreeIndex;
use qpv_reldb::encoding::{decode_row, encode_row};
use qpv_reldb::page::Page;
use qpv_reldb::row::{Row, RowId};
use qpv_reldb::value::Value;
use qpv_reldb::Database;
use std::hint::black_box;

fn sample_row() -> Row {
    Row::from_values([
        Value::Int(123456),
        Value::Text("a provider name".into()),
        Value::Float(72.5),
        Value::Bool(true),
        Value::Null,
    ])
}

fn bench_row_codec(c: &mut Criterion) {
    let row = sample_row();
    let bytes = encode_row(&row);
    c.bench_function("reldb/encode_row", |b| {
        b.iter(|| black_box(encode_row(&row)))
    });
    c.bench_function("reldb/decode_row", |b| {
        b.iter(|| black_box(decode_row(&bytes).unwrap()))
    });
}

fn bench_page_insert(c: &mut Criterion) {
    let record = encode_row(&sample_row());
    c.bench_function("reldb/page_fill", |b| {
        b.iter(|| {
            let mut page = Page::new(0);
            let mut count = 0u32;
            while page.insert(&record).is_ok() {
                count += 1;
            }
            black_box(count)
        });
    });
}

fn bench_btree(c: &mut Criterion) {
    let mut group = c.benchmark_group("reldb/btree");
    group.bench_function("insert_10k", |b| {
        b.iter(|| {
            let mut idx = BTreeIndex::new();
            for i in 0..10_000i64 {
                idx.insert(Value::Int(i), RowId::new(i as u64, 0));
            }
            black_box(idx.len())
        });
    });
    let mut idx = BTreeIndex::new();
    for i in 0..10_000i64 {
        idx.insert(Value::Int(i), RowId::new(i as u64, 0));
    }
    group.bench_function("point_lookup", |b| {
        b.iter(|| {
            for i in (0..10_000i64).step_by(97) {
                black_box(idx.get(&Value::Int(i)));
            }
        });
    });
    group.bench_function("range_scan_1k", |b| {
        b.iter(|| {
            let n = idx
                .range(
                    std::ops::Bound::Included(&Value::Int(4_000)),
                    std::ops::Bound::Excluded(&Value::Int(5_000)),
                )
                .count();
            black_box(n)
        });
    });
    group.finish();
}

fn bench_sql_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("reldb/sql");
    group.sample_size(20);
    group.throughput(Throughput::Elements(100));
    group.bench_function("insert_100_rows", |b| {
        b.iter(|| {
            let mut db = Database::in_memory();
            db.execute("CREATE TABLE t (id INT, name TEXT, score FLOAT)")
                .unwrap();
            let values: Vec<String> = (0..100)
                .map(|i| format!("({i}, 'name{i}', {i}.5)"))
                .collect();
            db.execute(&format!("INSERT INTO t VALUES {}", values.join(",")))
                .unwrap();
            black_box(db)
        });
    });

    let mut db = Database::in_memory();
    db.execute("CREATE TABLE t (id INT, name TEXT, score FLOAT)")
        .unwrap();
    for chunk in 0..100 {
        let values: Vec<String> = (0..100)
            .map(|i| {
                let id = chunk * 100 + i;
                format!("({id}, 'name{id}', {id}.5)")
            })
            .collect();
        db.execute(&format!("INSERT INTO t VALUES {}", values.join(",")))
            .unwrap();
    }
    group.bench_function("scan_filter_10k", |b| {
        b.iter(|| {
            let rs = db
                .query("SELECT name FROM t WHERE score > 5000 AND id % 2 = 0")
                .unwrap();
            black_box(rs.len())
        });
    });
    group.bench_function("aggregate_10k", |b| {
        b.iter(|| {
            let rs = db
                .query("SELECT COUNT(*), AVG(score) FROM t WHERE id >= 1000")
                .unwrap();
            black_box(rs.rows[0].values[0].clone())
        });
    });
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    // Prepare a durable database once; each iteration reopens it (snapshot
    // restore + WAL replay + index rebuild).
    let dir = std::env::temp_dir().join(format!("qpv-bench-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut db = Database::open(&dir).unwrap();
        db.execute("CREATE TABLE t (id INT, payload TEXT)").unwrap();
        db.execute("CREATE INDEX t_id ON t (id)").unwrap();
        for chunk in 0..20 {
            let values: Vec<String> = (0..100)
                .map(|i| format!("({}, '{}')", chunk * 100 + i, "x".repeat(64)))
                .collect();
            db.execute(&format!("INSERT INTO t VALUES {}", values.join(",")))
                .unwrap();
        }
    }
    let mut group = c.benchmark_group("reldb/recovery");
    group.sample_size(10);
    group.bench_function("reopen_2k_rows_wal_only", |b| {
        b.iter(|| {
            let db = Database::open(&dir).unwrap();
            black_box(db)
        });
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    benches,
    bench_row_codec,
    bench_page_insert,
    bench_btree,
    bench_sql_path,
    bench_recovery
);
criterion_main!(benches);
