//! P6: sharded parallel audit scaling.
//!
//! The audit is embarrassingly parallel per provider (Eq. 15's terms are
//! independent), so wall-clock should drop with worker count until the
//! machine runs out of cores. This bench sweeps thread counts over a
//! 100k-provider population and also measures the shard-stable generator,
//! asserting on every sample that the parallel report stays identical to
//! the sequential one.
//!
//! Emit JSON with: `QPV_BENCH_JSON=BENCH_parallel_audit.json \
//!     cargo bench -p qpv-bench --bench parallel_audit`

use std::num::NonZeroUsize;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qpv_synth::population::par_generate;
use qpv_synth::Scenario;
use std::hint::black_box;

const N: usize = 100_000;
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn bench_parallel_audit(c: &mut Criterion) {
    let n = qpv_bench::bench_n(N);
    let scenario = Scenario::healthcare(64, 42); // spec donor
    let population = par_generate(
        &scenario.spec,
        n,
        42,
        NonZeroUsize::new(4).expect("nonzero"),
    );
    let engine = scenario.engine();
    let sequential = engine.run(&population.profiles);

    // Skip thread counts the scheduler cannot grant (pinned containers)
    // instead of plotting flat oversubscription curves; skips land in the
    // JSON's "skipped" array.
    let avail = criterion::threads_available();
    let mut group = c.benchmark_group("audit/parallel");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    for threads in THREADS.into_iter().filter(|&t| t <= avail) {
        let nz = NonZeroUsize::new(threads).expect("nonzero");
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, _| {
            b.iter(|| {
                let report = engine
                    .par_audit(black_box(&population.profiles), nz)
                    .expect("no fault injection in benchmarks");
                assert_eq!(report.total_violations, sequential.total_violations);
                black_box(report)
            });
        });
    }
    group.finish();
    for threads in THREADS.into_iter().filter(|&t| t > avail) {
        c.record_skip(
            format!("audit/parallel/threads/{threads}"),
            format!("above threads_available ({avail})"),
        );
    }
}

fn bench_parallel_generation(c: &mut Criterion) {
    let n = qpv_bench::bench_n(N);
    let scenario = Scenario::healthcare(64, 42);
    let avail = criterion::threads_available();
    let mut group = c.benchmark_group("synth/par_generate");
    group.sample_size(10);
    group.throughput(Throughput::Elements(n as u64));
    for threads in THREADS.into_iter().filter(|&t| t <= avail) {
        let nz = NonZeroUsize::new(threads).expect("nonzero");
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, _| {
            b.iter(|| black_box(par_generate(&scenario.spec, n, 42, nz)));
        });
    }
    group.finish();
    for threads in THREADS.into_iter().filter(|&t| t > avail) {
        c.record_skip(
            format!("synth/par_generate/threads/{threads}"),
            format!("above threads_available ({avail})"),
        );
    }
}

criterion_group!(benches, bench_parallel_audit, bench_parallel_generation);
criterion_main!(benches);
