//! Quick-turnaround profiling driver for the packed counts pass: the
//! same 100k healthcare population as `benches/compiled_population.rs`,
//! timed best-of-30 in-process. On a noisy shared host the best-of
//! minimum is a far steadier signal for kernel iteration than
//! Criterion's medians across separate runs (observed ±40% run-to-run):
//!
//! ```text
//! cargo run --release -p qpv-bench --example packed_profile
//! ```
use std::num::NonZeroUsize;
use std::time::Instant;

use qpv_core::CompiledPopulation;
use qpv_synth::population::par_generate;
use qpv_synth::Scenario;

fn main() {
    let n = 100_000;
    let scenario = Scenario::healthcare(64, 42);
    let population = par_generate(&scenario.spec, n, 42, NonZeroUsize::new(4).unwrap());
    let engine = scenario.engine();
    let pop = CompiledPopulation::from_profiles(&population.profiles);
    println!(
        "unique rows: {} / {}  (dedup {:.2}x)",
        pop.unique_row_count(),
        pop.len(),
        pop.dedup_ratio()
    );
    let total_prefs: usize = population
        .profiles
        .iter()
        .map(|p| p.preferences.len())
        .sum();
    println!(
        "avg prefs/provider: {:.2}  policy tuples: {}",
        total_prefs as f64 / n as f64,
        engine.policy.len()
    );
    let expected = engine.counts(&pop);
    let mut best = f64::MAX;
    for _ in 0..30 {
        let t = Instant::now();
        let c = engine.counts(&pop);
        let dt = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(c, expected);
        if dt < best {
            best = dt;
        }
    }
    println!("counts best: {best:.3} ms");
}
