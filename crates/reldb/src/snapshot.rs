//! LSN-snapshot readers: lock-free reads while the writer commits.
//!
//! This module is the reader half of the engine's concurrency model (the
//! decentdb WAL design, SNIPPETS.md Snippet 1): the writer serialises
//! behind [`crate::db::SharedDatabase`]'s mutex, and each reader captures
//! `wal_end_lsn` at [`begin`](crate::db::SharedDatabase::begin_snapshot)
//! and reads page versions `<= snapshot_lsn` without ever taking the
//! writer's lock.
//!
//! ## The version-visibility index
//!
//! [`VersionStore`] maps every page to a chain of committed images, each
//! stamped with the LSN of the commit boundary that made it current:
//!
//! ```text
//! page 7: [(lsn 0, img), (lsn 4, img), (lsn 9, img)]
//!          └─ visible at S ∈ [0,3]  ─┘└─ S ∈ [4,8] ─┘└─ S ≥ 9
//! ```
//!
//! The writer publishes into the index at every commit boundary (see
//! `BufferPool::publish_batch`): for each page dirtied since the previous
//! boundary, the now-committed image is appended to that page's chain.
//! Pages dirtied by an *open* transaction are not published until its
//! `COMMIT` syncs, so the index only ever contains committed states — a
//! reader can never observe a torn or uncommitted page.
//!
//! A reader at snapshot LSN `S` resolves page `P` to the newest chain
//! entry with `lsn_from <= S`. Because the chain entry a snapshot needs is
//! immutable (`Arc`-shared) once published, reads require only a short
//! index lock — never the writer's big lock — and the writer never waits
//! for readers.
//!
//! ## Reclamation and `SnapshotTooOld`
//!
//! History is pruned after every publish: entries superseded by a newer
//! image at or below the oldest active snapshot serve no one and are
//! dropped. If retained *history* still exceeds
//! [`VersionStoreConfig::max_retained_bytes`] (a stalled reader pinning
//! old versions while the writer churns), the store advances its
//! retention floor to the current boundary and reclaims everything below
//! it. Readers whose snapshot predates the floor get a typed
//! [`DbError::SnapshotTooOld`] on their next read — never a panic and
//! never a silently stale answer — and recover by beginning a fresh
//! snapshot.
//!
//! ## Fault injection
//!
//! Every new I/O point routes through the shared failpoint lattice
//! ([`FaultOp::VersionPublish`], [`FaultOp::VersionRead`],
//! [`FaultOp::VersionPrune`]), keeping torture plans total over the
//! concurrent path. A fault on the *writer-side* ops (publish/prune)
//! wedges the store — subsequent snapshot operations fail loudly with the
//! injected error — but never fails the writer's own commit: by the time
//! the store publishes, the commit is already durable, and un-committing
//! it to satisfy an in-memory cache would invert the durability contract.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::catalog::Catalog;
use crate::error::{DbError, DbResult};
use crate::fault::{FaultDecision, FaultInjector, FaultOp};
use crate::page::{Page, PAGE_SIZE};
use crate::row::{Row, RowId};
use crate::schema::Schema;

/// One committed 4 KiB page image.
pub type PageImage = [u8; PAGE_SIZE];

/// Tuning for the version store.
#[derive(Debug, Clone, Copy)]
pub struct VersionStoreConfig {
    /// Cap on retained *history* bytes (superseded images kept alive only
    /// for open snapshots). When exceeded, the retention floor advances
    /// and snapshots below it are reclaimed ([`DbError::SnapshotTooOld`]).
    /// The latest committed image of each page is the reader working set
    /// and is never reclaimed.
    pub max_retained_bytes: usize,
}

impl Default for VersionStoreConfig {
    fn default() -> VersionStoreConfig {
        VersionStoreConfig {
            // 16k historical pages (64 MiB): a deep backlog before any
            // reader is sacrificed.
            max_retained_bytes: 64 << 20,
        }
    }
}

struct StoreInner {
    /// Per-page committed image chains, entries sorted by ascending
    /// `lsn_from`. The last entry is the current committed image.
    chains: HashMap<u64, Vec<(u64, Arc<PageImage>)>>,
    /// Catalog versions, sorted by ascending `lsn_from` (DDL and heap
    /// growth change table metadata, which must be read at the snapshot's
    /// boundary just like pages).
    catalogs: Vec<(u64, Arc<Catalog>)>,
    /// Newest published commit boundary.
    current_lsn: u64,
    /// Snapshots at or above this LSN are fully servable; below it,
    /// history has been reclaimed.
    oldest_retained_lsn: u64,
    /// Open snapshots: LSN → handle count.
    active: BTreeMap<u64, usize>,
    /// Bytes held by superseded (non-latest) chain entries.
    history_bytes: usize,
    /// A writer-side fault (publish/prune) wedged the store: all snapshot
    /// ops fail with this error's kind from now on.
    wedged: Option<String>,
}

/// The version-visibility index shared by the writer and all snapshot
/// readers. Cheap to clone (`Arc` inside).
#[derive(Clone)]
pub struct VersionStore {
    inner: Arc<Mutex<StoreInner>>,
    injector: Option<FaultInjector>,
    config: VersionStoreConfig,
}

impl VersionStore {
    /// An empty store whose first boundary is `base_lsn`. The caller
    /// (`Database::ensure_snapshots`) must seed every live page at
    /// `base_lsn` before handing out readers.
    pub fn new(
        base_lsn: u64,
        config: VersionStoreConfig,
        injector: Option<FaultInjector>,
    ) -> VersionStore {
        VersionStore {
            inner: Arc::new(Mutex::new(StoreInner {
                chains: HashMap::new(),
                catalogs: Vec::new(),
                current_lsn: base_lsn,
                oldest_retained_lsn: base_lsn,
                active: BTreeMap::new(),
                history_bytes: 0,
                wedged: None,
            })),
            injector,
            config,
        }
    }

    fn check(&self, op: FaultOp) -> DbResult<()> {
        if let Some(injector) = &self.injector {
            match injector.check(op, 0) {
                FaultDecision::Proceed => {}
                FaultDecision::Torn { .. } => unreachable!("version ops carry no medium bytes"),
                FaultDecision::Fail(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Mark the store broken by a writer-side failure: every subsequent
    /// snapshot operation fails loudly with the recorded cause. Used by
    /// the writer when a publish batch dies partway (e.g. a page fault-in
    /// error) — a half-published boundary must never be readable.
    pub(crate) fn wedge(&self, why: &DbError) {
        self.inner.lock().wedged = Some(why.to_string());
    }

    fn wedged_error(msg: &str) -> DbError {
        DbError::Io(std::io::Error::other(format!(
            "version store wedged by injected fault: {msg}"
        )))
    }

    /// Append `image` as page `page_id`'s committed state as of `lsn`.
    /// Identical consecutive images are deduplicated (an aborted
    /// transaction republishes the bytes it restored).
    ///
    /// Writer-side: a fault here wedges the store (reads fail loudly) but
    /// must not fail the already-durable commit, so the caller swallows
    /// the error after wedging.
    pub(crate) fn publish_page(&self, page_id: u64, lsn: u64, image: &PageImage) -> DbResult<()> {
        if let Err(e) = self.check(FaultOp::VersionPublish) {
            self.wedge(&e);
            return Err(e);
        }
        let mut inner = self.inner.lock();
        let chain = inner.chains.entry(page_id).or_default();
        if let Some((_, last)) = chain.last() {
            if last.as_ref() == image {
                return Ok(());
            }
        }
        let superseded = !chain.is_empty();
        chain.push((lsn, Arc::new(*image)));
        if superseded {
            // The previous latest entry becomes history.
            inner.history_bytes += PAGE_SIZE;
        }
        Ok(())
    }

    /// Publish the catalog as of boundary `lsn` and advance `current_lsn`.
    pub(crate) fn publish_catalog(&self, lsn: u64, catalog: Catalog) {
        let mut inner = self.inner.lock();
        let replace = match inner.catalogs.last() {
            // Same boundary republished (e.g. seed then first commit at
            // the same LSN after a no-op batch): keep the newest.
            Some((last_lsn, _)) => *last_lsn == lsn,
            None => false,
        };
        if replace {
            inner.catalogs.pop();
        }
        inner.catalogs.push((lsn, Arc::new(catalog)));
        inner.current_lsn = inner.current_lsn.max(lsn);
    }

    /// Drop history no open snapshot can ever read, and — if retained
    /// history still exceeds the configured cap — advance the retention
    /// floor over the oldest snapshots (they get [`DbError::SnapshotTooOld`]
    /// on their next read).
    pub(crate) fn prune(&self) {
        let mut inner = self.inner.lock();
        if inner.wedged.is_some() {
            return;
        }
        let floor = inner
            .active
            .keys()
            .next()
            .copied()
            .unwrap_or(inner.current_lsn)
            .min(inner.current_lsn)
            .max(inner.oldest_retained_lsn);
        Self::prune_below(&mut inner, floor);
        if inner.history_bytes > self.config.max_retained_bytes {
            // A stalled reader is pinning more history than the budget
            // allows: reclaim up to the current boundary and doom the
            // stragglers to a typed retry. This is the one prune that
            // changes reader-visible behaviour, so it is a failpoint.
            drop(inner);
            if let Err(e) = self.check(FaultOp::VersionPrune) {
                self.wedge(&e);
                return;
            }
            let mut inner = self.inner.lock();
            let current = inner.current_lsn;
            inner.oldest_retained_lsn = current;
            Self::prune_below(&mut inner, current);
        }
    }

    /// Remove chain entries superseded at or below `floor` (keeping, per
    /// chain, the newest entry `<= floor` — it serves `floor` itself) and
    /// catalog versions likewise.
    fn prune_below(inner: &mut StoreInner, floor: u64) {
        let mut freed = 0usize;
        for chain in inner.chains.values_mut() {
            // Index of the newest entry visible at `floor`.
            let keep_from = match chain.iter().rposition(|(lsn, _)| *lsn <= floor) {
                Some(i) => i,
                None => continue,
            };
            freed += keep_from * PAGE_SIZE;
            chain.drain(..keep_from);
        }
        if let Some(i) = inner.catalogs.iter().rposition(|(lsn, _)| *lsn <= floor) {
            inner.catalogs.drain(..i);
        }
        inner.history_bytes = inner.history_bytes.saturating_sub(freed);
        inner.oldest_retained_lsn = inner.oldest_retained_lsn.max(floor.min(inner.current_lsn));
    }

    /// Register an open snapshot at `lsn` (refcounted).
    pub(crate) fn register(&self, lsn: u64) {
        *self.inner.lock().active.entry(lsn).or_insert(0) += 1;
    }

    /// Release one handle on snapshot `lsn`, then reclaim freed history.
    pub(crate) fn release(&self, lsn: u64) {
        {
            let mut inner = self.inner.lock();
            if let Some(count) = inner.active.get_mut(&lsn) {
                *count -= 1;
                if *count == 0 {
                    inner.active.remove(&lsn);
                }
            }
        }
        self.prune();
    }

    /// The committed image of `page_id` visible at snapshot `lsn`.
    pub fn read_page(&self, page_id: u64, lsn: u64) -> DbResult<Arc<PageImage>> {
        self.check(FaultOp::VersionRead)?;
        let inner = self.inner.lock();
        if let Some(msg) = &inner.wedged {
            return Err(Self::wedged_error(msg));
        }
        if lsn < inner.oldest_retained_lsn {
            return Err(DbError::SnapshotTooOld {
                snapshot_lsn: lsn,
                oldest_retained_lsn: inner.oldest_retained_lsn,
            });
        }
        let chain = inner.chains.get(&page_id).ok_or_else(|| {
            DbError::Corruption(format!("page {page_id} has no version chain at lsn {lsn}"))
        })?;
        match chain.iter().rev().find(|(from, _)| *from <= lsn) {
            Some((_, image)) => Ok(Arc::clone(image)),
            None => Err(DbError::Corruption(format!(
                "page {page_id}: no version visible at lsn {lsn} (chain starts at {})",
                chain.first().map(|(l, _)| *l).unwrap_or(0)
            ))),
        }
    }

    /// The catalog visible at snapshot `lsn`.
    pub fn read_catalog(&self, lsn: u64) -> DbResult<Arc<Catalog>> {
        let inner = self.inner.lock();
        if let Some(msg) = &inner.wedged {
            return Err(Self::wedged_error(msg));
        }
        if lsn < inner.oldest_retained_lsn {
            return Err(DbError::SnapshotTooOld {
                snapshot_lsn: lsn,
                oldest_retained_lsn: inner.oldest_retained_lsn,
            });
        }
        inner
            .catalogs
            .iter()
            .rev()
            .find(|(from, _)| *from <= lsn)
            .map(|(_, c)| Arc::clone(c))
            .ok_or_else(|| DbError::Corruption(format!("no catalog version visible at lsn {lsn}")))
    }

    /// Newest published commit boundary.
    pub fn current_lsn(&self) -> u64 {
        self.inner.lock().current_lsn
    }

    /// Snapshots below this LSN have been reclaimed.
    pub fn oldest_retained_lsn(&self) -> u64 {
        self.inner.lock().oldest_retained_lsn
    }

    /// Bytes held by superseded images (the reclaimable history).
    pub fn history_bytes(&self) -> usize {
        self.inner.lock().history_bytes
    }

    /// Total bytes resident in the index (latest images + history).
    pub fn resident_bytes(&self) -> usize {
        let inner = self.inner.lock();
        inner
            .chains
            .values()
            .map(|c| c.len() * PAGE_SIZE)
            .sum::<usize>()
    }

    /// Number of open snapshot handles.
    pub fn active_snapshots(&self) -> usize {
        self.inner.lock().active.values().sum()
    }
}

impl std::fmt::Debug for VersionStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("VersionStore")
            .field("current_lsn", &inner.current_lsn)
            .field("oldest_retained_lsn", &inner.oldest_retained_lsn)
            .field("pages", &inner.chains.len())
            .field("history_bytes", &inner.history_bytes)
            .field("active", &inner.active)
            .field("wedged", &inner.wedged)
            .finish()
    }
}

/// A read-only view of the database at one commit boundary.
///
/// Obtained from [`crate::db::SharedDatabase::begin_snapshot`]; holds no
/// lock, so any number of readers scan concurrently with the writer. All
/// reads resolve against the version chains at `snapshot_lsn`; if the
/// store reclaims that history (see [`VersionStoreConfig`]) every
/// subsequent read returns [`DbError::SnapshotTooOld`] and the caller
/// retries with a fresh snapshot.
pub struct SnapshotReader {
    store: VersionStore,
    snapshot_lsn: u64,
    catalog: Arc<Catalog>,
}

impl SnapshotReader {
    /// Capture a reader over `store` at boundary `snapshot_lsn`.
    pub(crate) fn new(store: VersionStore, snapshot_lsn: u64) -> DbResult<SnapshotReader> {
        store.register(snapshot_lsn);
        let catalog = match store.read_catalog(snapshot_lsn) {
            Ok(c) => c,
            Err(e) => {
                store.release(snapshot_lsn);
                return Err(e);
            }
        };
        Ok(SnapshotReader {
            store,
            snapshot_lsn,
            catalog,
        })
    }

    /// The commit boundary this snapshot observes.
    pub fn lsn(&self) -> u64 {
        self.snapshot_lsn
    }

    /// The catalog as of the snapshot.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The schema of `table` as of the snapshot.
    pub fn schema(&self, table: &str) -> DbResult<&Schema> {
        Ok(&self.catalog.require_table(table)?.schema)
    }

    fn page(&self, page_id: u64) -> DbResult<Page> {
        let image = self.store.read_page(page_id, self.snapshot_lsn)?;
        Page::from_bytes(*image)
    }

    /// Scan every live row of `table` in heap order, exactly as the
    /// writer's own scan would have returned it at the snapshot boundary.
    pub fn scan(&self, table: &str) -> DbResult<Vec<(RowId, Row)>> {
        let meta = self.catalog.require_table(table)?;
        let mut out = Vec::new();
        let mut next = Some(meta.heap.first_page());
        while let Some(page_id) = next {
            let page = self.page(page_id)?;
            for slot in 0..page.slot_count() {
                if let Some(bytes) = page.get(slot) {
                    out.push((
                        RowId::new(page_id, slot),
                        crate::encoding::decode_row(bytes)?,
                    ));
                }
            }
            next = page.next_page();
        }
        Ok(out)
    }

    /// Fetch one row by address, as of the snapshot.
    pub fn get(&self, table: &str, rid: RowId) -> DbResult<Row> {
        // Address validity is judged against the snapshot's heap, not the
        // live one: a row the writer has since deleted is still here.
        self.catalog.require_table(table)?;
        let page = self.page(rid.page)?;
        match page.get(rid.slot) {
            Some(bytes) => crate::encoding::decode_row(bytes),
            None => Err(DbError::RecordNotFound {
                page: rid.page,
                slot: rid.slot,
            }),
        }
    }

    /// Count live rows of `table` at the snapshot.
    pub fn count(&self, table: &str) -> DbResult<usize> {
        Ok(self.scan(table)?.len())
    }
}

impl Drop for SnapshotReader {
    fn drop(&mut self) {
        self.store.release(self.snapshot_lsn);
    }
}

impl std::fmt::Debug for SnapshotReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotReader")
            .field("snapshot_lsn", &self.snapshot_lsn)
            .field("tables", &self.catalog.tables().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(fill: u8) -> PageImage {
        let page = Page::new(0);
        let mut bytes = *page.as_bytes();
        // Scribble a recognisable byte into the payload area.
        bytes[PAGE_SIZE - 1] = fill;
        bytes
    }

    #[test]
    fn visibility_resolves_to_newest_entry_at_or_below_snapshot() {
        let store = VersionStore::new(0, VersionStoreConfig::default(), None);
        store.publish_page(0, 0, &image(10)).unwrap();
        store.publish_catalog(0, Catalog::new());
        store.publish_page(0, 4, &image(40)).unwrap();
        store.publish_catalog(4, Catalog::new());
        store.publish_page(0, 9, &image(90)).unwrap();
        store.publish_catalog(9, Catalog::new());
        for (lsn, want) in [(0, 10), (3, 10), (4, 40), (8, 40), (9, 90), (12, 90)] {
            let img = store.read_page(0, lsn).unwrap();
            assert_eq!(img[PAGE_SIZE - 1], want, "lsn {lsn}");
        }
    }

    #[test]
    fn identical_republish_is_deduplicated() {
        let store = VersionStore::new(0, VersionStoreConfig::default(), None);
        store.publish_page(0, 0, &image(1)).unwrap();
        store.publish_page(0, 3, &image(1)).unwrap(); // abort restored bytes
        assert_eq!(store.resident_bytes(), PAGE_SIZE);
        assert_eq!(store.history_bytes(), 0);
    }

    #[test]
    fn prune_respects_open_snapshots() {
        let store = VersionStore::new(0, VersionStoreConfig::default(), None);
        store.publish_page(0, 0, &image(10)).unwrap();
        store.publish_catalog(0, Catalog::new());
        store.register(0); // a reader holds lsn 0 open
        store.publish_page(0, 1, &image(11)).unwrap();
        store.publish_catalog(1, Catalog::new());
        store.prune();
        // The lsn-0 image must survive for the open reader.
        assert_eq!(store.read_page(0, 0).unwrap()[PAGE_SIZE - 1], 10);
        store.release(0);
        // With the reader gone, history collapses to the latest image.
        assert_eq!(store.history_bytes(), 0);
        assert_eq!(store.read_page(0, 1).unwrap()[PAGE_SIZE - 1], 11);
    }

    #[test]
    fn over_budget_history_dooms_stragglers_with_typed_error() {
        let config = VersionStoreConfig {
            max_retained_bytes: PAGE_SIZE, // room for one historical image
        };
        let store = VersionStore::new(0, config, None);
        store.publish_page(0, 0, &image(0)).unwrap();
        store.publish_catalog(0, Catalog::new());
        store.register(0); // stalled reader pins lsn 0
        for lsn in 1..=4u64 {
            store.publish_page(0, lsn, &image(lsn as u8)).unwrap();
            store.publish_catalog(lsn, Catalog::new());
            store.prune();
        }
        let err = store.read_page(0, 0).unwrap_err();
        match err {
            DbError::SnapshotTooOld {
                snapshot_lsn,
                oldest_retained_lsn,
            } => {
                assert_eq!(snapshot_lsn, 0);
                assert!(oldest_retained_lsn > 0);
            }
            other => panic!("expected SnapshotTooOld, got {other}"),
        }
        // A fresh snapshot at the current boundary reads fine.
        assert_eq!(
            store.read_page(0, store.current_lsn()).unwrap()[PAGE_SIZE - 1],
            4
        );
        store.release(0);
    }

    #[test]
    fn publish_fault_wedges_reads_but_not_silently() {
        use crate::fault::{FaultKind, FaultPlan};
        // SyncFail (not CrashStop): a crash-stop injector fails every
        // subsequent op too, which would mask the wedge path under test.
        let injector = FaultInjector::new(FaultPlan::fail_at(0, FaultKind::SyncFail));
        let store = VersionStore::new(0, VersionStoreConfig::default(), Some(injector));
        assert!(store.publish_page(0, 0, &image(1)).is_err());
        let err = store.read_page(0, 0).unwrap_err();
        assert!(
            err.to_string().contains("wedged"),
            "reads after a publish fault must fail loudly: {err}"
        );
    }
}
