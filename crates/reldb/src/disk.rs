//! Page-granular persistent storage.
//!
//! [`PageStore`] abstracts the backing medium; the engine ships a
//! file-backed store for durability and an in-memory store for tests and for
//! the privacy layer's default configuration (the violation model is
//! analytical and usually does not need durability).

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use crate::error::{DbError, DbResult};
use crate::page::PAGE_SIZE;

/// Fsync the parent directory of `path`, making a file creation, rename, or
/// truncation durable across power loss. POSIX only guarantees a new or
/// renamed directory entry survives once the *directory* itself is synced;
/// syncing just the file is not enough. Platforms whose directories cannot
/// be opened for sync are tolerated (the open itself failing is ignored).
pub fn sync_dir(path: impl AsRef<Path>) -> DbResult<()> {
    let dir = match path.as_ref().parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => Path::new("."),
    };
    if let Ok(handle) = File::open(dir) {
        handle.sync_all()?;
    }
    Ok(())
}

/// A medium that stores fixed-size pages addressed by page id.
pub trait PageStore: Send {
    /// Read page `page_id` into `buf`.
    fn read_page(&mut self, page_id: u64, buf: &mut [u8; PAGE_SIZE]) -> DbResult<()>;
    /// Write `buf` as page `page_id`, extending the medium if needed.
    fn write_page(&mut self, page_id: u64, buf: &[u8; PAGE_SIZE]) -> DbResult<()>;
    /// Number of pages currently stored.
    fn num_pages(&self) -> u64;
    /// Durably sync all written pages.
    fn sync(&mut self) -> DbResult<()>;
}

/// Heap-allocated page storage. Fast, non-durable.
#[derive(Default)]
pub struct MemStore {
    pages: Vec<Box<[u8; PAGE_SIZE]>>,
}

impl MemStore {
    /// An empty in-memory store.
    pub fn new() -> MemStore {
        MemStore::default()
    }
}

impl PageStore for MemStore {
    fn read_page(&mut self, page_id: u64, buf: &mut [u8; PAGE_SIZE]) -> DbResult<()> {
        let page = self
            .pages
            .get(page_id as usize)
            .ok_or_else(|| DbError::Corruption(format!("read of unallocated page {page_id}")))?;
        buf.copy_from_slice(&page[..]);
        Ok(())
    }

    fn write_page(&mut self, page_id: u64, buf: &[u8; PAGE_SIZE]) -> DbResult<()> {
        let idx = page_id as usize;
        while self.pages.len() <= idx {
            self.pages.push(Box::new([0u8; PAGE_SIZE]));
        }
        self.pages[idx].copy_from_slice(buf);
        Ok(())
    }

    fn num_pages(&self) -> u64 {
        self.pages.len() as u64
    }

    fn sync(&mut self) -> DbResult<()> {
        Ok(())
    }
}

/// File-backed page storage. Pages live at `page_id * PAGE_SIZE`.
pub struct FileStore {
    file: File,
    num_pages: u64,
}

impl FileStore {
    /// Open (or create) the page file at `path`. When the file is newly
    /// created, the parent directory is fsynced so the creation itself is
    /// durable.
    pub fn open(path: impl AsRef<Path>) -> DbResult<FileStore> {
        let path = path.as_ref();
        let created = !path.exists();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        if created {
            sync_dir(path)?;
        }
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(DbError::Corruption(format!(
                "page file length {len} is not a multiple of the page size"
            )));
        }
        Ok(FileStore {
            file,
            num_pages: len / PAGE_SIZE as u64,
        })
    }
}

impl PageStore for FileStore {
    fn read_page(&mut self, page_id: u64, buf: &mut [u8; PAGE_SIZE]) -> DbResult<()> {
        if page_id >= self.num_pages {
            return Err(DbError::Corruption(format!(
                "read of unallocated page {page_id} (file has {})",
                self.num_pages
            )));
        }
        self.file
            .seek(SeekFrom::Start(page_id * PAGE_SIZE as u64))?;
        self.file.read_exact(buf)?;
        Ok(())
    }

    fn write_page(&mut self, page_id: u64, buf: &[u8; PAGE_SIZE]) -> DbResult<()> {
        self.file
            .seek(SeekFrom::Start(page_id * PAGE_SIZE as u64))?;
        self.file.write_all(buf)?;
        self.num_pages = self.num_pages.max(page_id + 1);
        Ok(())
    }

    fn num_pages(&self) -> u64 {
        self.num_pages
    }

    fn sync(&mut self) -> DbResult<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_store(store: &mut dyn PageStore) {
        let mut a = [0u8; PAGE_SIZE];
        a[0] = 0xaa;
        a[PAGE_SIZE - 1] = 0xbb;
        store.write_page(0, &a).unwrap();
        // Sparse write: page 3 skips 1 and 2.
        let mut c = [0u8; PAGE_SIZE];
        c[100] = 7;
        store.write_page(3, &c).unwrap();
        assert_eq!(store.num_pages(), 4);

        let mut buf = [1u8; PAGE_SIZE];
        store.read_page(0, &mut buf).unwrap();
        assert_eq!(buf[0], 0xaa);
        assert_eq!(buf[PAGE_SIZE - 1], 0xbb);
        store.read_page(3, &mut buf).unwrap();
        assert_eq!(buf[100], 7);
        // Overwrite.
        let z = [9u8; PAGE_SIZE];
        store.write_page(0, &z).unwrap();
        store.read_page(0, &mut buf).unwrap();
        assert_eq!(buf, z);
        // Out-of-range read errors.
        assert!(store.read_page(99, &mut buf).is_err());
        store.sync().unwrap();
    }

    #[test]
    fn mem_store_semantics() {
        check_store(&mut MemStore::new());
    }

    #[test]
    fn file_store_semantics_and_reopen() {
        let dir = std::env::temp_dir().join(format!("qpv-disk-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = FileStore::open(&path).unwrap();
            check_store(&mut store);
        }
        // Reopen: contents persist.
        let mut store = FileStore::open(&path).unwrap();
        assert_eq!(store.num_pages(), 4);
        let mut buf = [0u8; PAGE_SIZE];
        store.read_page(0, &mut buf).unwrap();
        assert_eq!(buf, [9u8; PAGE_SIZE]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_store_rejects_torn_files() {
        let dir = std::env::temp_dir().join(format!("qpv-disk-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.db");
        std::fs::write(&path, vec![0u8; PAGE_SIZE + 17]).unwrap();
        assert!(matches!(
            FileStore::open(&path),
            Err(DbError::Corruption(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
