//! Binary row encoding.
//!
//! Records are stored self-describing: each value carries a one-byte tag, so
//! a page can be decoded without consulting the catalog (useful during WAL
//! replay, before the catalog is rebuilt). Integers use zigzag + LEB128
//! varints; floats are fixed 8-byte little-endian; strings and byte arrays
//! are length-prefixed.
//!
//! Layout of an encoded row:
//!
//! ```text
//! varint(column_count) ( tag value-bytes )*
//! ```

use bytes::{Buf, BufMut};

use crate::error::{DbError, DbResult};
use crate::row::Row;
use crate::value::Value;

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_TEXT: u8 = 5;
const TAG_BYTES: u8 = 6;

/// Append a LEB128 varint.
pub fn put_varint(buf: &mut impl BufMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Read a LEB128 varint.
pub fn get_varint(buf: &mut impl Buf) -> DbResult<u64> {
    let mut out: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(DbError::Corruption("truncated varint".into()));
        }
        let byte = buf.get_u8();
        if shift >= 64 {
            return Err(DbError::Corruption("varint too long".into()));
        }
        // The final byte may not overflow the 64-bit value.
        if shift == 63 && (byte & 0x7e) != 0 {
            return Err(DbError::Corruption("varint overflows u64".into()));
        }
        out |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
    }
}

fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append one value.
pub fn encode_value(buf: &mut Vec<u8>, value: &Value) {
    match value {
        Value::Null => buf.put_u8(TAG_NULL),
        Value::Bool(false) => buf.put_u8(TAG_FALSE),
        Value::Bool(true) => buf.put_u8(TAG_TRUE),
        Value::Int(i) => {
            buf.put_u8(TAG_INT);
            put_varint(buf, zigzag_encode(*i));
        }
        Value::Float(f) => {
            buf.put_u8(TAG_FLOAT);
            buf.put_f64_le(*f);
        }
        Value::Text(s) => {
            buf.put_u8(TAG_TEXT);
            put_varint(buf, s.len() as u64);
            buf.put_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            buf.put_u8(TAG_BYTES);
            put_varint(buf, b.len() as u64);
            buf.put_slice(b);
        }
    }
}

/// Read one value.
pub fn decode_value(buf: &mut &[u8]) -> DbResult<Value> {
    if !buf.has_remaining() {
        return Err(DbError::Corruption("truncated value tag".into()));
    }
    let tag = buf.get_u8();
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_INT => Ok(Value::Int(zigzag_decode(get_varint(buf)?))),
        TAG_FLOAT => {
            if buf.remaining() < 8 {
                return Err(DbError::Corruption("truncated float".into()));
            }
            Ok(Value::Float(buf.get_f64_le()))
        }
        TAG_TEXT => {
            let len = get_varint(buf)? as usize;
            if buf.remaining() < len {
                return Err(DbError::Corruption("truncated text".into()));
            }
            let bytes = buf[..len].to_vec();
            buf.advance(len);
            String::from_utf8(bytes)
                .map(Value::Text)
                .map_err(|_| DbError::Corruption("invalid utf-8 in text value".into()))
        }
        TAG_BYTES => {
            let len = get_varint(buf)? as usize;
            if buf.remaining() < len {
                return Err(DbError::Corruption("truncated bytes".into()));
            }
            let bytes = buf[..len].to_vec();
            buf.advance(len);
            Ok(Value::Bytes(bytes))
        }
        other => Err(DbError::Corruption(format!("unknown value tag {other}"))),
    }
}

/// Encode a whole row.
pub fn encode_row(row: &Row) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + row.values.len() * 8);
    put_varint(&mut buf, row.values.len() as u64);
    for v in &row.values {
        encode_value(&mut buf, v);
    }
    buf
}

/// Decode a whole row, requiring the buffer to be fully consumed.
pub fn decode_row(mut bytes: &[u8]) -> DbResult<Row> {
    let count = get_varint(&mut bytes)? as usize;
    // Cap pathological counts before allocating (a corrupt varint could
    // claim 2^60 columns).
    if count > bytes.len() + 1 {
        return Err(DbError::Corruption(format!(
            "row claims {count} columns in {} bytes",
            bytes.len()
        )));
    }
    let mut values = Vec::with_capacity(count);
    for _ in 0..count {
        values.push(decode_value(&mut bytes)?);
    }
    if bytes.has_remaining() {
        return Err(DbError::Corruption(format!(
            "{} trailing bytes after row",
            bytes.remaining()
        )));
    }
    Ok(Row::new(values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn varint_round_trips_boundaries() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut slice = buf.as_slice();
            assert_eq!(get_varint(&mut slice).unwrap(), v);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut slice: &[u8] = &[0x80];
        assert!(get_varint(&mut slice).is_err());
        // 11 continuation bytes is always too long for u64.
        let long = [0xffu8; 11];
        let mut slice: &[u8] = &long;
        assert!(get_varint(&mut slice).is_err());
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123456, 123456] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
    }

    #[test]
    fn row_round_trips_every_type() {
        let row = Row::from_values([
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::Float(3.5),
            Value::Text("héllo".into()),
            Value::Bytes(vec![0, 255, 7]),
        ]);
        let bytes = encode_row(&row);
        assert_eq!(decode_row(&bytes).unwrap(), row);
    }

    #[test]
    fn empty_row_round_trips() {
        let row = Row::from_values([]);
        assert_eq!(decode_row(&encode_row(&row)).unwrap(), row);
    }

    #[test]
    fn trailing_garbage_is_corruption() {
        let mut bytes = encode_row(&Row::from_values([Value::Int(1)]));
        bytes.push(0);
        assert!(matches!(decode_row(&bytes), Err(DbError::Corruption(_))));
    }

    #[test]
    fn truncated_rows_are_corruption() {
        let bytes = encode_row(&Row::from_values([Value::Text("abcdef".into())]));
        for cut in 0..bytes.len() {
            assert!(
                decode_row(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn absurd_column_count_is_rejected_without_allocation() {
        // varint 2^60 followed by nothing.
        let mut bytes = Vec::new();
        put_varint(&mut bytes, 1 << 60);
        assert!(decode_row(&bytes).is_err());
    }

    #[test]
    fn unknown_tag_is_corruption() {
        let mut bytes = Vec::new();
        put_varint(&mut bytes, 1);
        bytes.push(99);
        assert!(decode_row(&bytes).is_err());
    }

    fn arb_value() -> impl Strategy<Value = Value> {
        prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::Int),
            // Finite floats only: NaN breaks PartialEq-based round-trip
            // assertion, though the encoding itself preserves the bits.
            any::<f64>()
                .prop_filter("finite", |f| f.is_finite())
                .prop_map(Value::Float),
            ".{0,64}".prop_map(Value::Text),
            proptest::collection::vec(any::<u8>(), 0..64).prop_map(Value::Bytes),
        ]
    }

    proptest! {
        #[test]
        fn prop_row_round_trip(values in proptest::collection::vec(arb_value(), 0..16)) {
            let row = Row::new(values);
            let bytes = encode_row(&row);
            prop_assert_eq!(decode_row(&bytes).unwrap(), row);
        }

        #[test]
        fn prop_varint_round_trip(v in any::<u64>()) {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            prop_assert!(buf.len() <= 10);
            let mut slice = buf.as_slice();
            prop_assert_eq!(get_varint(&mut slice).unwrap(), v);
        }

        #[test]
        fn prop_decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode_row(&bytes); // must not panic
        }
    }
}
