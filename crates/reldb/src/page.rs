//! Slotted pages: the unit of storage and buffering.
//!
//! A page is a fixed [`PAGE_SIZE`] byte array laid out in the classical
//! slotted scheme:
//!
//! ```text
//! ┌─────────────┬────────────────┬───── free ─────┬───────────────┐
//! │ header 24 B │ slot array →   │                │ ← record data │
//! └─────────────┴────────────────┴────────────────┴───────────────┘
//! ```
//!
//! The slot array grows forward from the header; record bytes grow backward
//! from the end. Each 4-byte slot holds the record's `(offset, len)`. Deleted
//! records leave a tombstoned slot (offset 0) so other records' slot numbers
//! — and therefore [`crate::row::RowId`]s — stay stable; the dead bytes are
//! reclaimed by [`Page::compact`], which slides live records together without
//! renumbering slots.

use crate::error::{DbError, DbResult};

/// Size of every page, in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Sentinel "no next page" value in the heap chain header field.
pub const NO_PAGE: u64 = u64::MAX;

const MAGIC: u16 = 0x51da; // arbitrary constant guarding against foreign bytes
const HEADER_SIZE: usize = 24;
const SLOT_SIZE: usize = 4;

// Header field offsets.
const OFF_PAGE_ID: usize = 0; // u64
const OFF_NEXT_PAGE: usize = 8; // u64
const OFF_SLOT_COUNT: usize = 16; // u16
const OFF_FREE_PTR: usize = 18; // u16: start of the record-data region
const OFF_MAGIC: usize = 20; // u16
const OFF_GARBAGE: usize = 22; // u16: dead record bytes reclaimable by compact

/// One fixed-size slotted page.
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
    dirty: bool,
}

impl Page {
    /// A fresh, empty page with the given id.
    pub fn new(page_id: u64) -> Page {
        let mut page = Page {
            data: Box::new([0u8; PAGE_SIZE]),
            dirty: true,
        };
        page.put_u64(OFF_PAGE_ID, page_id);
        page.put_u64(OFF_NEXT_PAGE, NO_PAGE);
        page.put_u16(OFF_SLOT_COUNT, 0);
        page.put_u16(OFF_FREE_PTR, PAGE_SIZE as u16);
        page.put_u16(OFF_MAGIC, MAGIC);
        page.put_u16(OFF_GARBAGE, 0);
        page
    }

    /// Interpret raw bytes (read from disk) as a page, validating the magic
    /// and structural invariants.
    pub fn from_bytes(bytes: [u8; PAGE_SIZE]) -> DbResult<Page> {
        let page = Page {
            data: Box::new(bytes),
            dirty: false,
        };
        if page.get_u16(OFF_MAGIC) != MAGIC {
            return Err(DbError::Corruption("bad page magic".into()));
        }
        let slot_end = HEADER_SIZE + page.slot_count() as usize * SLOT_SIZE;
        let free_ptr = page.get_u16(OFF_FREE_PTR) as usize;
        if slot_end > free_ptr || free_ptr > PAGE_SIZE {
            return Err(DbError::Corruption(format!(
                "page {}: slot array (ends {slot_end}) overlaps data region (starts {free_ptr})",
                page.page_id()
            )));
        }
        Ok(page)
    }

    /// The raw bytes, e.g. for writing to disk.
    pub fn as_bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// This page's id.
    pub fn page_id(&self) -> u64 {
        self.get_u64(OFF_PAGE_ID)
    }

    /// The next page in the owning heap's chain, if any.
    pub fn next_page(&self) -> Option<u64> {
        match self.get_u64(OFF_NEXT_PAGE) {
            NO_PAGE => None,
            id => Some(id),
        }
    }

    /// Link this page to a successor in the heap chain.
    pub fn set_next_page(&mut self, next: Option<u64>) {
        self.put_u64(OFF_NEXT_PAGE, next.unwrap_or(NO_PAGE));
        self.dirty = true;
    }

    /// Number of slots (live + tombstoned).
    pub fn slot_count(&self) -> u16 {
        self.get_u16(OFF_SLOT_COUNT)
    }

    /// Whether the page has been modified since it was loaded/flushed.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Mark the page clean (called by the buffer pool after flushing).
    pub fn mark_clean(&mut self) {
        self.dirty = false;
    }

    /// Contiguous free bytes between the slot array and the data region.
    pub fn contiguous_free(&self) -> usize {
        let slot_end = HEADER_SIZE + self.slot_count() as usize * SLOT_SIZE;
        self.get_u16(OFF_FREE_PTR) as usize - slot_end
    }

    /// Dead record bytes that [`Page::compact`] could reclaim.
    pub fn garbage_bytes(&self) -> usize {
        self.get_u16(OFF_GARBAGE) as usize
    }

    /// Whether a record of `len` bytes fits, possibly after compaction.
    pub fn can_fit(&self, len: usize) -> bool {
        let need = len
            + if self.reusable_slot().is_some() {
                0
            } else {
                SLOT_SIZE
            };
        self.contiguous_free() + self.garbage_bytes() >= need
    }

    /// Insert a record, compacting first if fragmentation requires it.
    /// Returns the slot number.
    pub fn insert(&mut self, record: &[u8]) -> DbResult<u16> {
        if record.len() > PAGE_SIZE - HEADER_SIZE - SLOT_SIZE {
            return Err(DbError::PageFull); // can never fit in any page
        }
        if !self.can_fit(record.len()) {
            return Err(DbError::PageFull);
        }
        let reuse = self.reusable_slot();
        let need = record.len() + if reuse.is_some() { 0 } else { SLOT_SIZE };
        if self.contiguous_free() < need {
            self.compact();
        }
        debug_assert!(self.contiguous_free() >= need);

        let free_ptr = self.get_u16(OFF_FREE_PTR) as usize;
        let new_off = free_ptr - record.len();
        self.data[new_off..free_ptr].copy_from_slice(record);
        self.put_u16(OFF_FREE_PTR, new_off as u16);

        let slot = match reuse {
            Some(slot) => slot,
            None => {
                let slot = self.slot_count();
                self.put_u16(OFF_SLOT_COUNT, slot + 1);
                slot
            }
        };
        self.write_slot(slot, new_off as u16, record.len() as u16);
        self.dirty = true;
        Ok(slot)
    }

    /// The record bytes at `slot`, or `None` if the slot is out of range or
    /// tombstoned.
    pub fn get(&self, slot: u16) -> Option<&[u8]> {
        let (off, len) = self.read_slot(slot)?;
        if off == 0 {
            return None; // tombstone
        }
        Some(&self.data[off as usize..off as usize + len as usize])
    }

    /// Tombstone the record at `slot`. Returns whether a live record was
    /// removed.
    pub fn delete(&mut self, slot: u16) -> bool {
        match self.read_slot(slot) {
            Some((off, len)) if off != 0 => {
                self.write_slot(slot, 0, 0);
                let garbage = self.get_u16(OFF_GARBAGE) + len;
                self.put_u16(OFF_GARBAGE, garbage);
                // A record at the free pointer can be freed immediately.
                if off == self.get_u16(OFF_FREE_PTR) {
                    self.put_u16(OFF_FREE_PTR, off + len);
                    self.put_u16(OFF_GARBAGE, garbage - len);
                }
                self.dirty = true;
                true
            }
            _ => false,
        }
    }

    /// Replace the record at `slot` in place. Fails with [`DbError::PageFull`]
    /// if the new bytes cannot fit even after compaction (the caller then
    /// falls back to delete + reinsert elsewhere).
    pub fn update(&mut self, slot: u16, record: &[u8]) -> DbResult<()> {
        let (off, len) = self.read_slot(slot).ok_or(DbError::RecordNotFound {
            page: self.page_id(),
            slot,
        })?;
        if off == 0 {
            return Err(DbError::RecordNotFound {
                page: self.page_id(),
                slot,
            });
        }
        if record.len() <= len as usize {
            // Shrinking (or equal) update: rewrite in place.
            let off = off as usize;
            self.data[off..off + record.len()].copy_from_slice(record);
            let shrink = len - record.len() as u16;
            if shrink > 0 {
                self.write_slot(slot, off as u16, record.len() as u16);
                self.put_u16(OFF_GARBAGE, self.get_u16(OFF_GARBAGE) + shrink);
            }
            self.dirty = true;
            return Ok(());
        }
        // Growing update: free the old bytes, then insert fresh data while
        // keeping the same slot number.
        let old = (off, len);
        self.write_slot(slot, 0, 0);
        self.put_u16(OFF_GARBAGE, self.get_u16(OFF_GARBAGE) + old.1);
        if self.contiguous_free() + self.garbage_bytes() < record.len() {
            // Roll back the tombstone; the record does not fit here.
            self.write_slot(slot, old.0, old.1);
            self.put_u16(OFF_GARBAGE, self.get_u16(OFF_GARBAGE) - old.1);
            return Err(DbError::PageFull);
        }
        if self.contiguous_free() < record.len() {
            self.compact();
        }
        let free_ptr = self.get_u16(OFF_FREE_PTR) as usize;
        let new_off = free_ptr - record.len();
        self.data[new_off..free_ptr].copy_from_slice(record);
        self.put_u16(OFF_FREE_PTR, new_off as u16);
        self.write_slot(slot, new_off as u16, record.len() as u16);
        self.dirty = true;
        Ok(())
    }

    /// Iterate `(slot, record bytes)` for live records.
    pub fn records(&self) -> impl Iterator<Item = (u16, &[u8])> {
        (0..self.slot_count()).filter_map(move |slot| self.get(slot).map(|rec| (slot, rec)))
    }

    /// Number of live (non-tombstoned) records.
    pub fn live_records(&self) -> usize {
        self.records().count()
    }

    /// Slide live records to the end of the page, eliminating dead bytes.
    /// Slot numbers are preserved.
    pub fn compact(&mut self) {
        let live: Vec<(u16, Vec<u8>)> = self
            .records()
            .map(|(slot, rec)| (slot, rec.to_vec()))
            .collect();
        let mut write_ptr = PAGE_SIZE;
        for (slot, rec) in &live {
            write_ptr -= rec.len();
            self.data[write_ptr..write_ptr + rec.len()].copy_from_slice(rec);
            self.write_slot(*slot, write_ptr as u16, rec.len() as u16);
        }
        self.put_u16(OFF_FREE_PTR, write_ptr as u16);
        self.put_u16(OFF_GARBAGE, 0);
        self.dirty = true;
    }

    fn reusable_slot(&self) -> Option<u16> {
        (0..self.slot_count()).find(|&slot| matches!(self.read_slot(slot), Some((0, _))))
    }

    fn slot_pos(slot: u16) -> usize {
        HEADER_SIZE + slot as usize * SLOT_SIZE
    }

    fn read_slot(&self, slot: u16) -> Option<(u16, u16)> {
        if slot >= self.slot_count() {
            return None;
        }
        let pos = Self::slot_pos(slot);
        Some((self.get_u16(pos), self.get_u16(pos + 2)))
    }

    fn write_slot(&mut self, slot: u16, off: u16, len: u16) {
        let pos = Self::slot_pos(slot);
        self.data[pos..pos + 2].copy_from_slice(&off.to_le_bytes());
        self.data[pos + 2..pos + 4].copy_from_slice(&len.to_le_bytes());
    }

    fn get_u16(&self, pos: usize) -> u16 {
        u16::from_le_bytes([self.data[pos], self.data[pos + 1]])
    }

    fn put_u16(&mut self, pos: usize, v: u16) {
        self.data[pos..pos + 2].copy_from_slice(&v.to_le_bytes());
    }

    fn get_u64(&self, pos: usize) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.data[pos..pos + 8]);
        u64::from_le_bytes(b)
    }

    fn put_u64(&mut self, pos: usize, v: u64) {
        self.data[pos..pos + 8].copy_from_slice(&v.to_le_bytes());
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("page_id", &self.page_id())
            .field("next_page", &self.next_page())
            .field("slots", &self.slot_count())
            .field("live", &self.live_records())
            .field("free", &self.contiguous_free())
            .field("garbage", &self.garbage_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fresh_page_is_empty() {
        let p = Page::new(7);
        assert_eq!(p.page_id(), 7);
        assert_eq!(p.next_page(), None);
        assert_eq!(p.slot_count(), 0);
        assert_eq!(p.live_records(), 0);
        assert_eq!(p.contiguous_free(), PAGE_SIZE - HEADER_SIZE);
    }

    #[test]
    fn insert_get_round_trip() {
        let mut p = Page::new(0);
        let a = p.insert(b"hello").unwrap();
        let b = p.insert(b"world!").unwrap();
        assert_ne!(a, b);
        assert_eq!(p.get(a).unwrap(), b"hello");
        assert_eq!(p.get(b).unwrap(), b"world!");
        assert_eq!(p.live_records(), 2);
    }

    #[test]
    fn delete_tombstones_and_preserves_other_slots() {
        let mut p = Page::new(0);
        let a = p.insert(b"aaa").unwrap();
        let b = p.insert(b"bbb").unwrap();
        assert!(p.delete(a));
        assert!(!p.delete(a)); // idempotent
        assert_eq!(p.get(a), None);
        assert_eq!(p.get(b).unwrap(), b"bbb");
    }

    #[test]
    fn deleted_slots_are_reused() {
        let mut p = Page::new(0);
        let a = p.insert(b"one").unwrap();
        let _b = p.insert(b"two").unwrap();
        p.delete(a);
        let c = p.insert(b"three").unwrap();
        assert_eq!(c, a, "tombstoned slot should be reused");
        assert_eq!(p.get(c).unwrap(), b"three");
    }

    #[test]
    fn fills_up_and_reports_page_full() {
        let mut p = Page::new(0);
        let rec = [0xabu8; 100];
        let mut inserted = 0;
        while p.insert(&rec).is_ok() {
            inserted += 1;
        }
        // 4096 - 24 header; each record costs 100 + 4 slot bytes.
        assert_eq!(inserted, (PAGE_SIZE - HEADER_SIZE) / 104);
        assert!(matches!(p.insert(&rec), Err(DbError::PageFull)));
        // But there is still room for something small.
        assert!(p.insert(b"x").is_ok());
    }

    #[test]
    fn record_larger_than_page_is_rejected() {
        let mut p = Page::new(0);
        let huge = vec![0u8; PAGE_SIZE];
        assert!(matches!(p.insert(&huge), Err(DbError::PageFull)));
    }

    #[test]
    fn compaction_reclaims_deleted_space() {
        let mut p = Page::new(0);
        let rec = [1u8; 400];
        let mut slots = Vec::new();
        while let Ok(s) = p.insert(&rec) {
            slots.push(s);
        }
        // Delete every other record; fragmented free space appears.
        let kept: Vec<u16> = slots
            .iter()
            .enumerate()
            .filter_map(|(i, &s)| {
                if i % 2 == 0 {
                    p.delete(s);
                    None
                } else {
                    Some(s)
                }
            })
            .collect();
        assert!(p.garbage_bytes() > 0 || p.contiguous_free() >= 400);
        // A new record of the same size must fit again (via compaction).
        let s = p.insert(&rec).unwrap();
        assert_eq!(p.get(s).unwrap(), &rec[..]);
        for k in kept {
            assert_eq!(p.get(k).unwrap(), &rec[..], "slot {k} lost by compaction");
        }
    }

    #[test]
    fn update_in_place_and_growing() {
        let mut p = Page::new(0);
        let s = p.insert(b"small").unwrap();
        // Shrinking update.
        p.update(s, b"sm").unwrap();
        assert_eq!(p.get(s).unwrap(), b"sm");
        // Growing update keeps the slot.
        p.update(s, b"much larger record").unwrap();
        assert_eq!(p.get(s).unwrap(), b"much larger record");
        // Update of a tombstone fails.
        p.delete(s);
        assert!(matches!(
            p.update(s, b"x"),
            Err(DbError::RecordNotFound { .. })
        ));
    }

    #[test]
    fn growing_update_that_cannot_fit_rolls_back() {
        let mut p = Page::new(0);
        let filler = vec![7u8; 1000];
        let s = p.insert(&filler).unwrap();
        while p.insert(&filler).is_ok() {}
        let little = p.insert(b"pad").unwrap();
        let _ = little;
        let huge = vec![9u8; 3500];
        assert!(matches!(p.update(s, &huge), Err(DbError::PageFull)));
        // Original record still intact after failed grow.
        assert_eq!(p.get(s).unwrap(), &filler[..]);
    }

    #[test]
    fn bytes_round_trip_through_disk_format() {
        let mut p = Page::new(42);
        p.set_next_page(Some(43));
        let s = p.insert(b"persisted").unwrap();
        let bytes = *p.as_bytes();
        let q = Page::from_bytes(bytes).unwrap();
        assert_eq!(q.page_id(), 42);
        assert_eq!(q.next_page(), Some(43));
        assert_eq!(q.get(s).unwrap(), b"persisted");
        assert!(!q.is_dirty());
    }

    #[test]
    fn foreign_bytes_are_rejected() {
        let bytes = [0u8; PAGE_SIZE];
        assert!(matches!(
            Page::from_bytes(bytes),
            Err(DbError::Corruption(_))
        ));
    }

    #[test]
    fn dirty_tracking() {
        let mut p = Page::new(1);
        assert!(p.is_dirty()); // fresh pages must be written
        p.mark_clean();
        assert!(!p.is_dirty());
        p.insert(b"x").unwrap();
        assert!(p.is_dirty());
    }

    proptest! {
        /// Random interleavings of insert/delete/update never corrupt the
        /// page: every live record reads back exactly as last written.
        #[test]
        fn prop_page_operations_preserve_records(
            ops in proptest::collection::vec(
                (0u8..3, proptest::collection::vec(any::<u8>(), 1..300)),
                1..120,
            )
        ) {
            let mut page = Page::new(0);
            // Shadow model: slot -> expected bytes.
            let mut model: std::collections::HashMap<u16, Vec<u8>> =
                std::collections::HashMap::new();
            for (op, bytes) in ops {
                match op {
                    0 => {
                        if let Ok(slot) = page.insert(&bytes) {
                            model.insert(slot, bytes);
                        }
                    }
                    1 => {
                        if let Some(&slot) = model.keys().next() {
                            prop_assert!(page.delete(slot));
                            model.remove(&slot);
                        }
                    }
                    _ => {
                        if let Some(&slot) = model.keys().next() {
                            if page.update(slot, &bytes).is_ok() {
                                model.insert(slot, bytes);
                            }
                        }
                    }
                }
                // Invariant: every modelled record reads back.
                for (&slot, expected) in &model {
                    prop_assert_eq!(page.get(slot).unwrap(), &expected[..]);
                }
                prop_assert_eq!(page.live_records(), model.len());
            }
            // Survives a disk round trip too.
            let restored = Page::from_bytes(*page.as_bytes()).unwrap();
            for (&slot, expected) in &model {
                prop_assert_eq!(restored.get(slot).unwrap(), &expected[..]);
            }
        }
    }
}
