//! An LRU buffer pool between the engine and the page store.
//!
//! All page access goes through [`BufferPool`]: pages are loaded into a
//! bounded set of frames, mutated in place, and written back on eviction or
//! at a checkpoint ([`BufferPool::flush_all`]). The pool is single-threaded
//! (`&mut` API) — concurrency is layered above it (see
//! [`crate::db::SharedDatabase`]), which keeps eviction and borrowing
//! trivially sound.

use std::collections::{BTreeSet, HashMap};

use crate::disk::PageStore;
use crate::error::{DbError, DbResult};
use crate::fault::{retry_transient_with, RetryPolicy};
use crate::page::{Page, PAGE_SIZE};
use crate::snapshot::VersionStore;

/// Cache statistics, useful for the storage benchmarks.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Page requests served from a resident frame.
    pub hits: u64,
    /// Page requests that had to read from the store.
    pub misses: u64,
    /// Dirty pages written back during eviction.
    pub evictions: u64,
}

struct Frame {
    page: Page,
    /// LRU clock value of the last access.
    last_used: u64,
}

/// A bounded page cache with least-recently-used eviction.
pub struct BufferPool {
    store: Box<dyn PageStore>,
    frames: HashMap<u64, Frame>,
    capacity: usize,
    clock: u64,
    next_page_id: u64,
    stats: PoolStats,
    /// Bounded retry for transient store faults. Page reads, writes, and
    /// syncs are idempotent, so retrying any of them is always safe.
    retry: RetryPolicy,
    /// Whether retry backoffs may sleep inline. [`crate::db::SharedDatabase`]
    /// turns this off so no thread ever sleeps while holding its mutex;
    /// backoff then happens at that layer, outside the lock.
    sleep_on_retry: bool,
    /// Pages mutated since the last published commit boundary, in sorted
    /// order so version-store publishes walk a deterministic op stream.
    /// Only populated while snapshot tracking is on ([`BufferPool::
    /// track_mutations`]); empty otherwise, at zero cost to the write path
    /// beyond one branch.
    batch: BTreeSet<u64>,
    /// Whether mutations are being recorded for snapshot publication.
    tracking: bool,
}

impl BufferPool {
    /// Default number of resident pages (1024 × 4 KiB = 4 MiB).
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// Create a pool over `store` holding at most `capacity` pages.
    pub fn new(store: Box<dyn PageStore>, capacity: usize) -> BufferPool {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        let next_page_id = store.num_pages();
        BufferPool {
            store,
            frames: HashMap::with_capacity(capacity),
            capacity,
            clock: 0,
            next_page_id,
            stats: PoolStats::default(),
            retry: RetryPolicy::none(),
            sleep_on_retry: true,
            batch: BTreeSet::new(),
            tracking: false,
        }
    }

    /// Set the bounded-retry policy applied to transient store faults.
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// Forbid sleeping inside retry loops (used when the pool lives under
    /// a shared lock; see [`crate::db::SharedDatabase`]). Transient faults
    /// are still retried, back to back.
    pub fn defer_retry_sleeps(&mut self) {
        self.sleep_on_retry = false;
    }

    /// Start recording mutated page ids for snapshot publication
    /// ([`BufferPool::publish_batch`]). Mutations made *before* tracking
    /// starts are not recorded — the version store seeds itself with the
    /// full committed state when snapshots are first enabled.
    pub fn track_mutations(&mut self) {
        self.tracking = true;
    }

    /// Publish every page mutated since the last boundary into `store` as
    /// the committed state at `lsn`, clearing the batch.
    ///
    /// Evicted batch pages are faulted back in to copy their bytes, so
    /// the store's I/O op stream stays deterministic (the batch iterates
    /// in ascending page-id order).
    pub fn publish_batch(&mut self, store: &VersionStore, lsn: u64) -> DbResult<()> {
        let batch = std::mem::take(&mut self.batch);
        for page_id in batch {
            self.fault_in(page_id)?;
            let frame = self.frames.get(&page_id).expect("just faulted in");
            store.publish_page(page_id, lsn, frame.page.as_bytes())?;
        }
        Ok(())
    }

    /// Ids of pages mutated since the last boundary (tests/diagnostics).
    pub fn batch_len(&self) -> usize {
        self.batch.len()
    }

    /// Allocate a fresh page and return its id. The page is resident and
    /// dirty.
    pub fn allocate(&mut self) -> DbResult<u64> {
        let page_id = self.next_page_id;
        self.next_page_id += 1;
        self.make_room()?;
        let page = Page::new(page_id);
        // Materialise the page in the store immediately so that page-id
        // space is dense on disk even if this page is evicted clean later.
        let retry = self.retry;
        let sleep = self.sleep_on_retry;
        retry_transient_with(retry, sleep, || {
            self.store.write_page(page_id, page.as_bytes())
        })?;
        if self.tracking {
            self.batch.insert(page_id);
        }
        self.clock += 1;
        self.frames.insert(
            page_id,
            Frame {
                page,
                last_used: self.clock,
            },
        );
        Ok(page_id)
    }

    /// Borrow a page immutably, faulting it in if needed.
    pub fn page(&mut self, page_id: u64) -> DbResult<&Page> {
        self.fault_in(page_id)?;
        Ok(&self.frames.get(&page_id).expect("just faulted in").page)
    }

    /// Borrow a page mutably, faulting it in if needed.
    pub fn page_mut(&mut self, page_id: u64) -> DbResult<&mut Page> {
        self.fault_in(page_id)?;
        if self.tracking {
            self.batch.insert(page_id);
        }
        Ok(&mut self.frames.get_mut(&page_id).expect("just faulted in").page)
    }

    /// Write every dirty resident page back to the store and sync it.
    ///
    /// Pages are written in ascending page-id order (not `HashMap` order)
    /// so the store's I/O op stream is identical across runs — the fault
    /// injector's "crash at the Nth op" is meaningless otherwise.
    pub fn flush_all(&mut self) -> DbResult<()> {
        let mut dirty: Vec<u64> = self
            .frames
            .iter()
            .filter(|(_, f)| f.page.is_dirty())
            .map(|(&id, _)| id)
            .collect();
        dirty.sort_unstable();
        let retry = self.retry;
        let sleep = self.sleep_on_retry;
        for id in dirty {
            let frame = self.frames.get_mut(&id).expect("id collected above");
            retry_transient_with(retry, sleep, || {
                self.store.write_page(id, frame.page.as_bytes())
            })?;
            frame.page.mark_clean();
        }
        retry_transient_with(retry, sleep, || self.store.sync())
    }

    /// Total pages ever allocated (resident or not).
    pub fn num_pages(&self) -> u64 {
        self.next_page_id
    }

    /// Cache statistics since creation.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Number of currently resident pages (for tests).
    pub fn resident(&self) -> usize {
        self.frames.len()
    }

    fn fault_in(&mut self, page_id: u64) -> DbResult<()> {
        self.clock += 1;
        if let Some(frame) = self.frames.get_mut(&page_id) {
            frame.last_used = self.clock;
            self.stats.hits += 1;
            return Ok(());
        }
        self.stats.misses += 1;
        if page_id >= self.next_page_id {
            return Err(DbError::Corruption(format!(
                "access to unallocated page {page_id}"
            )));
        }
        self.make_room()?;
        let mut buf = [0u8; PAGE_SIZE];
        let retry = self.retry;
        let sleep = self.sleep_on_retry;
        retry_transient_with(retry, sleep, || self.store.read_page(page_id, &mut buf))?;
        let page = Page::from_bytes(buf)?;
        self.frames.insert(
            page_id,
            Frame {
                page,
                last_used: self.clock,
            },
        );
        Ok(())
    }

    /// Evict the least-recently-used frame if the pool is full.
    fn make_room(&mut self) -> DbResult<()> {
        if self.frames.len() < self.capacity {
            return Ok(());
        }
        let victim = self
            .frames
            .iter()
            .min_by_key(|(_, f)| f.last_used)
            .map(|(&id, _)| id)
            .expect("capacity > 0 and pool full implies a frame exists");
        let frame = self.frames.remove(&victim).expect("victim resident");
        if frame.page.is_dirty() {
            let retry = self.retry;
            let sleep = self.sleep_on_retry;
            retry_transient_with(retry, sleep, || {
                self.store.write_page(victim, frame.page.as_bytes())
            })?;
            self.stats.evictions += 1;
        }
        Ok(())
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .field("resident", &self.frames.len())
            .field("num_pages", &self.next_page_id)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemStore;

    fn pool(capacity: usize) -> BufferPool {
        BufferPool::new(Box::new(MemStore::new()), capacity)
    }

    #[test]
    fn allocate_and_access() {
        let mut pool = pool(4);
        let a = pool.allocate().unwrap();
        let b = pool.allocate().unwrap();
        assert_ne!(a, b);
        pool.page_mut(a).unwrap().insert(b"alpha").unwrap();
        pool.page_mut(b).unwrap().insert(b"beta").unwrap();
        assert_eq!(pool.page(a).unwrap().get(0).unwrap(), b"alpha");
        assert_eq!(pool.page(b).unwrap().get(0).unwrap(), b"beta");
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let mut pool = pool(2);
        let ids: Vec<u64> = (0..5).map(|_| pool.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            pool.page_mut(id)
                .unwrap()
                .insert(format!("rec{i}").as_bytes())
                .unwrap();
        }
        // Only 2 frames resident, but every page's data must survive.
        assert!(pool.resident() <= 2);
        for (i, &id) in ids.iter().enumerate() {
            let page = pool.page(id).unwrap();
            assert_eq!(page.get(0).unwrap(), format!("rec{i}").as_bytes());
        }
        assert!(pool.stats().evictions > 0);
        assert!(pool.stats().misses > 0);
    }

    #[test]
    fn lru_keeps_hot_pages() {
        let mut pool = pool(2);
        let a = pool.allocate().unwrap();
        let b = pool.allocate().unwrap();
        pool.page_mut(a).unwrap().insert(b"a").unwrap();
        pool.page_mut(b).unwrap().insert(b"b").unwrap();
        pool.flush_all().unwrap();
        let before = pool.stats();
        // Touch `a` so `b` is the LRU victim when `c` arrives.
        pool.page(a).unwrap();
        let c = pool.allocate().unwrap();
        pool.page(c).unwrap();
        // `a` should still be a hit.
        pool.page(a).unwrap();
        let after = pool.stats();
        assert_eq!(after.misses, before.misses, "hot page was evicted");
    }

    #[test]
    fn unallocated_access_is_an_error() {
        let mut pool = pool(2);
        assert!(pool.page(0).is_err());
        pool.allocate().unwrap();
        assert!(pool.page(0).is_ok());
        assert!(pool.page(1).is_err());
    }

    #[test]
    fn flush_all_marks_clean_and_persists() {
        let mut pool = pool(2);
        let a = pool.allocate().unwrap();
        pool.page_mut(a).unwrap().insert(b"x").unwrap();
        pool.flush_all().unwrap();
        assert!(!pool.page(a).unwrap().is_dirty());
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mut pool = pool(1);
        let a = pool.allocate().unwrap();
        let b = pool.allocate().unwrap(); // evicts a
        pool.page(b).unwrap(); // hit
        pool.page(a).unwrap(); // miss (refault)
        let stats = pool.stats();
        assert!(stats.hits >= 1);
        assert!(stats.misses >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_is_rejected() {
        pool(0);
    }
}
