//! Table and index metadata.
//!
//! The catalog maps names to [`TableMeta`] / [`IndexMeta`]. It is plain data
//! (serde-serialisable): the live index structures themselves are owned by
//! [`crate::db::Database`] and rebuilt from the heaps at recovery.

use serde::{Deserialize, Serialize};

use crate::error::{DbError, DbResult};
use crate::heap::TableHeap;
use crate::schema::Schema;

/// Identifies a table for the life of the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TableId(pub u32);

/// Identifies an index for the life of the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IndexId(pub u32);

/// Metadata for one table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableMeta {
    /// Stable id.
    pub id: TableId,
    /// Unique name.
    pub name: String,
    /// Column definitions.
    pub schema: Schema,
    /// Storage handle.
    pub heap: TableHeap,
}

/// Metadata for one single-column index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IndexMeta {
    /// Stable id.
    pub id: IndexId,
    /// Unique name.
    pub name: String,
    /// The indexed table.
    pub table: TableId,
    /// Which column of the table's schema is indexed.
    pub column: usize,
}

/// All schema objects in the database.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Catalog {
    tables: Vec<TableMeta>,
    indexes: Vec<IndexMeta>,
    next_table_id: u32,
    next_index_id: u32,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Register a table. Fails on duplicate names.
    pub fn create_table(
        &mut self,
        name: impl Into<String>,
        schema: Schema,
        heap: TableHeap,
    ) -> DbResult<TableId> {
        let name = name.into();
        if self.table(&name).is_some() {
            return Err(DbError::Catalog(format!("table {name:?} already exists")));
        }
        let id = TableId(self.next_table_id);
        self.next_table_id += 1;
        self.tables.push(TableMeta {
            id,
            name,
            schema,
            heap,
        });
        Ok(id)
    }

    /// Look a table up by name.
    pub fn table(&self, name: &str) -> Option<&TableMeta> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Look a table up by name, as an error-producing operation.
    pub fn require_table(&self, name: &str) -> DbResult<&TableMeta> {
        self.table(name)
            .ok_or_else(|| DbError::Catalog(format!("no such table {name:?}")))
    }

    /// Look a table up by id.
    pub fn table_by_id(&self, id: TableId) -> Option<&TableMeta> {
        self.tables.iter().find(|t| t.id == id)
    }

    /// Mutable access by id (the heap handle changes as pages are chained).
    pub fn table_by_id_mut(&mut self, id: TableId) -> Option<&mut TableMeta> {
        self.tables.iter_mut().find(|t| t.id == id)
    }

    /// Remove a table and all its indexes. Returns the removed metadata.
    pub fn drop_table(&mut self, name: &str) -> DbResult<TableMeta> {
        let pos = self
            .tables
            .iter()
            .position(|t| t.name == name)
            .ok_or_else(|| DbError::Catalog(format!("no such table {name:?}")))?;
        let meta = self.tables.remove(pos);
        self.indexes.retain(|i| i.table != meta.id);
        Ok(meta)
    }

    /// Register a single-column index over `table`. Fails on duplicate index
    /// names, unknown tables, or out-of-range columns.
    pub fn create_index(
        &mut self,
        name: impl Into<String>,
        table: TableId,
        column: usize,
    ) -> DbResult<IndexId> {
        let name = name.into();
        if self.indexes.iter().any(|i| i.name == name) {
            return Err(DbError::Catalog(format!("index {name:?} already exists")));
        }
        let meta = self
            .table_by_id(table)
            .ok_or_else(|| DbError::Catalog(format!("no table with id {}", table.0)))?;
        if column >= meta.schema.arity() {
            return Err(DbError::Catalog(format!(
                "column index {column} out of range for table {:?}",
                meta.name
            )));
        }
        let id = IndexId(self.next_index_id);
        self.next_index_id += 1;
        self.indexes.push(IndexMeta {
            id,
            name,
            table,
            column,
        });
        Ok(id)
    }

    /// Look an index up by name.
    pub fn index(&self, name: &str) -> Option<&IndexMeta> {
        self.indexes.iter().find(|i| i.name == name)
    }

    /// All indexes over `table`.
    pub fn indexes_for(&self, table: TableId) -> impl Iterator<Item = &IndexMeta> {
        self.indexes.iter().filter(move |i| i.table == table)
    }

    /// All indexes.
    pub fn indexes(&self) -> &[IndexMeta] {
        &self.indexes
    }

    /// Remove an index by name.
    pub fn drop_index(&mut self, name: &str) -> DbResult<IndexMeta> {
        let pos = self
            .indexes
            .iter()
            .position(|i| i.name == name)
            .ok_or_else(|| DbError::Catalog(format!("no such index {name:?}")))?;
        Ok(self.indexes.remove(pos))
    }

    /// All tables, in creation order.
    pub fn tables(&self) -> &[TableMeta] {
        &self.tables
    }

    /// Serialise to the binary snapshot format used by
    /// [`crate::db::Database::checkpoint`].
    pub fn encode(&self) -> Vec<u8> {
        use crate::encoding::put_varint;
        use crate::wal::{put_schema, put_string};
        let mut buf = Vec::with_capacity(128);
        buf.extend_from_slice(&Self::SNAP_MAGIC.to_le_bytes());
        put_varint(&mut buf, self.next_table_id as u64);
        put_varint(&mut buf, self.next_index_id as u64);
        put_varint(&mut buf, self.tables.len() as u64);
        for t in &self.tables {
            put_varint(&mut buf, t.id.0 as u64);
            put_string(&mut buf, &t.name);
            put_schema(&mut buf, &t.schema);
            put_varint(&mut buf, t.heap.first_page());
            put_varint(&mut buf, t.heap.last_page());
        }
        put_varint(&mut buf, self.indexes.len() as u64);
        for i in &self.indexes {
            put_varint(&mut buf, i.id.0 as u64);
            put_string(&mut buf, &i.name);
            put_varint(&mut buf, i.table.0 as u64);
            put_varint(&mut buf, i.column as u64);
        }
        buf
    }

    /// Deserialise a snapshot written by [`Catalog::encode`].
    pub fn decode(mut bytes: &[u8]) -> DbResult<Catalog> {
        use crate::encoding::get_varint;
        use crate::wal::{get_schema, get_string};
        let buf = &mut bytes;
        if buf.len() < 4 || buf[..4] != Self::SNAP_MAGIC.to_le_bytes() {
            return Err(DbError::Corruption("bad catalog snapshot magic".into()));
        }
        *buf = &buf[4..];
        let next_table_id = get_varint(buf)? as u32;
        let next_index_id = get_varint(buf)? as u32;
        let n_tables = get_varint(buf)? as usize;
        if n_tables > 1 << 20 {
            return Err(DbError::Corruption("absurd table count".into()));
        }
        let mut tables = Vec::with_capacity(n_tables);
        for _ in 0..n_tables {
            let id = TableId(get_varint(buf)? as u32);
            let name = get_string(buf)?;
            let schema = get_schema(buf)?;
            let first = get_varint(buf)?;
            let last = get_varint(buf)?;
            tables.push(TableMeta {
                id,
                name,
                schema,
                heap: TableHeap::from_parts(first, last),
            });
        }
        let n_indexes = get_varint(buf)? as usize;
        if n_indexes > 1 << 20 {
            return Err(DbError::Corruption("absurd index count".into()));
        }
        let mut indexes = Vec::with_capacity(n_indexes);
        for _ in 0..n_indexes {
            let id = IndexId(get_varint(buf)? as u32);
            let name = get_string(buf)?;
            let table = TableId(get_varint(buf)? as u32);
            let column = get_varint(buf)? as usize;
            indexes.push(IndexMeta {
                id,
                name,
                table,
                column,
            });
        }
        if !bytes.is_empty() {
            return Err(DbError::Corruption(
                "trailing bytes in catalog snapshot".into(),
            ));
        }
        Ok(Catalog {
            tables,
            indexes,
            next_table_id,
            next_index_id,
        })
    }

    const SNAP_MAGIC: u32 = 0x5150_5643; // "QPVC"
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::types::DataType;

    fn schema() -> Schema {
        SchemaBuilder::new()
            .column("id", DataType::Int)
            .column("name", DataType::Text)
            .build()
            .unwrap()
    }

    fn heap() -> TableHeap {
        TableHeap::from_parts(0, 0)
    }

    #[test]
    fn create_and_lookup_tables() {
        let mut cat = Catalog::new();
        let id = cat.create_table("users", schema(), heap()).unwrap();
        assert_eq!(cat.table("users").unwrap().id, id);
        assert!(cat.table("ghosts").is_none());
        assert!(cat.require_table("ghosts").is_err());
        assert_eq!(cat.table_by_id(id).unwrap().name, "users");
        assert_eq!(cat.tables().len(), 1);
    }

    #[test]
    fn duplicate_table_names_rejected() {
        let mut cat = Catalog::new();
        cat.create_table("t", schema(), heap()).unwrap();
        assert!(cat.create_table("t", schema(), heap()).is_err());
    }

    #[test]
    fn table_ids_are_never_reused() {
        let mut cat = Catalog::new();
        let a = cat.create_table("a", schema(), heap()).unwrap();
        cat.drop_table("a").unwrap();
        let b = cat.create_table("b", schema(), heap()).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn index_creation_validates() {
        let mut cat = Catalog::new();
        let t = cat.create_table("t", schema(), heap()).unwrap();
        let idx = cat.create_index("t_name", t, 1).unwrap();
        assert_eq!(cat.index("t_name").unwrap().id, idx);
        assert_eq!(cat.indexes_for(t).count(), 1);
        // Duplicate name.
        assert!(cat.create_index("t_name", t, 0).is_err());
        // Bad column.
        assert!(cat.create_index("t_bad", t, 5).is_err());
        // Bad table.
        assert!(cat.create_index("t_bad", TableId(99), 0).is_err());
    }

    #[test]
    fn drop_table_removes_its_indexes() {
        let mut cat = Catalog::new();
        let t = cat.create_table("t", schema(), heap()).unwrap();
        cat.create_index("t_id", t, 0).unwrap();
        cat.drop_table("t").unwrap();
        assert!(cat.index("t_id").is_none());
        assert!(cat.drop_table("t").is_err());
    }

    #[test]
    fn snapshot_encode_decode_round_trips() {
        let mut cat = Catalog::new();
        let t = cat
            .create_table("t", schema(), TableHeap::from_parts(3, 9))
            .unwrap();
        cat.create_index("t_id", t, 0).unwrap();
        cat.create_table("u", schema(), TableHeap::from_parts(10, 10))
            .unwrap();
        cat.drop_table("u").unwrap(); // bumps next ids past the live count
        let bytes = cat.encode();
        let back = Catalog::decode(&bytes).unwrap();
        assert_eq!(back.tables().len(), 1);
        assert_eq!(back.table("t").unwrap().heap.first_page(), 3);
        assert_eq!(back.index("t_id").unwrap().column, 0);
        // ids keep advancing from where the original left off
        let mut back = back;
        let new_id = back
            .create_table("v", schema(), TableHeap::from_parts(0, 0))
            .unwrap();
        assert!(new_id.0 >= 2);
    }

    #[test]
    fn snapshot_rejects_garbage() {
        assert!(Catalog::decode(&[]).is_err());
        assert!(Catalog::decode(&[1, 2, 3, 4, 5]).is_err());
        let mut good = Catalog::new().encode();
        good.push(7); // trailing byte
        assert!(Catalog::decode(&good).is_err());
    }

    #[test]
    fn drop_index() {
        let mut cat = Catalog::new();
        let t = cat.create_table("t", schema(), heap()).unwrap();
        cat.create_index("i", t, 0).unwrap();
        assert_eq!(cat.drop_index("i").unwrap().name, "i");
        assert!(cat.drop_index("i").is_err());
    }
}
