//! The abstract syntax tree the parser produces.

use crate::types::DataType;
use crate::value::Value;

/// An unresolved expression (column names, not indexes).
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// A column reference by name.
    Ident(String),
    /// A literal constant.
    Literal(Value),
    /// `-expr` or `NOT expr`.
    Unary {
        /// `"-"` or `"NOT"`.
        op: UnaryOp,
        /// Operand.
        expr: Box<AstExpr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<AstExpr>,
        /// Right operand.
        right: Box<AstExpr>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<AstExpr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// Function call, e.g. `COUNT(*)`, `SUM(x)`.
    Call {
        /// Upper-cased function name.
        name: String,
        /// The single argument, or `None` for `COUNT(*)`.
        arg: Option<Box<AstExpr>>,
    },
    /// `expr [NOT] IN (e1, e2, ...)`.
    InList {
        /// The tested expression.
        expr: Box<AstExpr>,
        /// The candidate list.
        list: Vec<AstExpr>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// The tested expression.
        expr: Box<AstExpr>,
        /// Lower bound (inclusive).
        low: Box<AstExpr>,
        /// Upper bound (inclusive).
        high: Box<AstExpr>,
        /// True for `NOT BETWEEN`.
        negated: bool,
    },
    /// `expr [NOT] LIKE 'pattern'`.
    Like {
        /// The tested expression.
        expr: Box<AstExpr>,
        /// The pattern literal.
        pattern: String,
        /// True for `NOT LIKE`.
        negated: bool,
    },
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Arithmetic negation.
    Neg,
    /// Logical NOT.
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

/// One item in a `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Star,
    /// An expression with an optional alias.
    Expr {
        /// The projected expression.
        expr: AstExpr,
        /// `AS alias`, if given.
        alias: Option<String>,
    },
}

/// A table reference in `FROM`/`JOIN`, with an optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name.
    pub name: String,
    /// `AS alias` (or bare alias), defaulting to the table name.
    pub alias: Option<String>,
}

impl TableRef {
    /// The name expressions qualify columns with.
    pub fn effective_alias(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// One `JOIN table ON condition` clause (inner joins only).
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// The joined table.
    pub table: TableRef,
    /// The `ON` condition.
    pub on: AstExpr,
}

/// A parsed `SELECT`.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// The projection list.
    pub items: Vec<SelectItem>,
    /// The first `FROM` table.
    pub table: TableRef,
    /// `JOIN` clauses, in source order.
    pub joins: Vec<Join>,
    /// `WHERE` predicate.
    pub predicate: Option<AstExpr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<AstExpr>,
    /// `ORDER BY` keys with `DESC` flags.
    pub order_by: Vec<(AstExpr, bool)>,
    /// `LIMIT`.
    pub limit: Option<usize>,
    /// `OFFSET`.
    pub offset: Option<usize>,
}

/// One column in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
    /// Whether NULL is allowed (default: NOT NULL, matching the engine's
    /// bias toward explicitness; write `NULL` to opt in).
    pub nullable: bool,
}

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<ColumnDef>,
    },
    /// `CREATE INDEX name ON table (column)`.
    CreateIndex {
        /// Index name.
        name: String,
        /// Indexed table.
        table: String,
        /// Indexed column name.
        column: String,
    },
    /// `DROP TABLE`.
    DropTable {
        /// Table name.
        name: String,
    },
    /// `DROP INDEX`.
    DropIndex {
        /// Index name.
        name: String,
    },
    /// `INSERT INTO table [(cols)] VALUES (...), (...)`.
    Insert {
        /// Target table.
        table: String,
        /// Explicit column list, if given.
        columns: Option<Vec<String>>,
        /// Rows of constant expressions.
        rows: Vec<Vec<AstExpr>>,
    },
    /// `SELECT`.
    Select(SelectStmt),
    /// `UPDATE table SET col = expr, ... [WHERE ...]`.
    Update {
        /// Target table.
        table: String,
        /// Assignments.
        sets: Vec<(String, AstExpr)>,
        /// `WHERE` predicate.
        predicate: Option<AstExpr>,
    },
    /// `DELETE FROM table [WHERE ...]`.
    Delete {
        /// Target table.
        table: String,
        /// `WHERE` predicate.
        predicate: Option<AstExpr>,
    },
    /// `BEGIN`.
    Begin,
    /// `COMMIT`.
    Commit,
    /// `ROLLBACK`.
    Rollback,
}
