//! The SQL front end.
//!
//! A hand-written pipeline: [`lexer`] turns text into tokens, [`parser`]
//! builds the [`ast`], and [`binder`] resolves names against the catalog and
//! produces executable [`crate::exec::Plan`]s (for queries) or bound mutation
//! descriptions (for DML).
//!
//! ## Supported dialect
//!
//! ```sql
//! CREATE TABLE t (id INT, name TEXT, age INT NULL);
//! CREATE INDEX t_age ON t (age);
//! DROP TABLE t;  DROP INDEX t_age;
//! INSERT INTO t VALUES (1, 'a', 30), (2, 'b', NULL);
//! INSERT INTO t (id, name) VALUES (3, 'c');
//! SELECT * FROM t WHERE age >= 21 AND name <> 'b' ORDER BY age DESC LIMIT 10 OFFSET 2;
//! SELECT DISTINCT name FROM t WHERE name LIKE 'a%' AND age BETWEEN 18 AND 65;
//! SELECT age, COUNT(*), AVG(id) FROM t GROUP BY age;
//! SELECT p.name, SUM(o.amount) FROM t p JOIN orders o ON p.id = o.person_id GROUP BY p.name;
//! UPDATE t SET age = age + 1 WHERE id = 3;
//! DELETE FROM t WHERE age IS NULL OR id IN (7, 8);
//! BEGIN; COMMIT; ROLLBACK;
//! ```
//!
//! Joins are inner joins (`JOIN`/`INNER JOIN ... ON`); equi-joins execute
//! as hash joins, everything else as nested loops. Known, deliberate
//! limitations: no outer joins or subqueries, `ORDER BY` is not combined
//! with `GROUP BY` (grouped output is already deterministically ordered by
//! group key), and expressions in `VALUES` must be constant.

pub mod ast;
pub mod binder;
pub mod lexer;
pub mod parser;

pub use ast::Statement;
pub use binder::{
    bind_delete, bind_expr, bind_insert, bind_select, bind_update, BoundDelete, BoundInsert,
    BoundUpdate,
};
pub use parser::parse;
