//! Recursive-descent SQL parser.

use crate::error::{DbError, DbResult};
use crate::types::DataType;
use crate::value::Value;

use super::ast::{
    AstExpr, BinaryOp, ColumnDef, Join, SelectItem, SelectStmt, Statement, TableRef, UnaryOp,
};
use super::lexer::{lex, Sym, Token};

/// Keywords that may follow a table reference, and therefore can never be
/// bare table aliases.
const CLAUSE_KEYWORDS: &[&str] = &[
    "WHERE", "GROUP", "ORDER", "LIMIT", "OFFSET", "JOIN", "INNER", "ON", "AND", "OR",
];

/// Parse a single SQL statement (a trailing `;` is allowed).
pub fn parse(input: &str) -> DbResult<Statement> {
    let tokens = lex(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_symbol(Sym::Semi); // optional terminator
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn advance(&mut self) -> Token {
        let tok = self.tokens[self.pos].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        tok
    }

    fn error(&self, expected: &str) -> DbError {
        DbError::SqlParse(format!("expected {expected}, found {:?}", self.peek()))
    }

    /// Consume the keyword if present; return whether it was.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> DbResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.error(kw))
        }
    }

    fn eat_symbol(&mut self, sym: Sym) -> bool {
        if *self.peek() == Token::Symbol(sym) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, sym: Sym) -> DbResult<()> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(self.error(&format!("{sym:?}")))
        }
    }

    fn expect_eof(&self) -> DbResult<()> {
        if *self.peek() == Token::Eof {
            Ok(())
        } else {
            Err(self.error("end of statement"))
        }
    }

    /// An identifier that is not being used as a keyword here. Unquoted
    /// identifiers are lowercased (SQL case-insensitivity); quoted ones were
    /// preserved by the lexer.
    fn ident(&mut self) -> DbResult<String> {
        match self.advance() {
            Token::Ident(s) => Ok(s.to_ascii_lowercase()),
            _ => {
                self.pos -= 1;
                Err(self.error("identifier"))
            }
        }
    }

    fn number_usize(&mut self) -> DbResult<usize> {
        match self.advance() {
            Token::Number(n) => n
                .parse::<usize>()
                .map_err(|_| DbError::SqlParse(format!("expected integer, found {n}"))),
            _ => {
                self.pos -= 1;
                Err(self.error("integer"))
            }
        }
    }

    fn statement(&mut self) -> DbResult<Statement> {
        if self.eat_kw("CREATE") {
            if self.eat_kw("TABLE") {
                return self.create_table();
            }
            if self.eat_kw("INDEX") {
                return self.create_index();
            }
            return Err(self.error("TABLE or INDEX"));
        }
        if self.eat_kw("DROP") {
            if self.eat_kw("TABLE") {
                return Ok(Statement::DropTable {
                    name: self.ident()?,
                });
            }
            if self.eat_kw("INDEX") {
                return Ok(Statement::DropIndex {
                    name: self.ident()?,
                });
            }
            return Err(self.error("TABLE or INDEX"));
        }
        if self.eat_kw("INSERT") {
            return self.insert();
        }
        if self.eat_kw("SELECT") {
            return self.select().map(Statement::Select);
        }
        if self.eat_kw("UPDATE") {
            return self.update();
        }
        if self.eat_kw("DELETE") {
            return self.delete();
        }
        if self.eat_kw("BEGIN") {
            return Ok(Statement::Begin);
        }
        if self.eat_kw("COMMIT") {
            return Ok(Statement::Commit);
        }
        if self.eat_kw("ROLLBACK") {
            return Ok(Statement::Rollback);
        }
        Err(self.error("a statement"))
    }

    fn create_table(&mut self) -> DbResult<Statement> {
        let name = self.ident()?;
        self.expect_symbol(Sym::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.ident()?;
            let type_name = self.ident()?;
            let dtype: DataType = type_name.parse()?;
            // Nullability: `NOT NULL` (default), or `NULL` to opt in.
            let mut nullable = false;
            if self.eat_kw("NOT") {
                self.expect_kw("NULL")?;
            } else if self.eat_kw("NULL") {
                nullable = true;
            }
            columns.push(ColumnDef {
                name: col_name,
                dtype,
                nullable,
            });
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        self.expect_symbol(Sym::RParen)?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn create_index(&mut self) -> DbResult<Statement> {
        let name = self.ident()?;
        self.expect_kw("ON")?;
        let table = self.ident()?;
        self.expect_symbol(Sym::LParen)?;
        let column = self.ident()?;
        self.expect_symbol(Sym::RParen)?;
        Ok(Statement::CreateIndex {
            name,
            table,
            column,
        })
    }

    fn insert(&mut self) -> DbResult<Statement> {
        self.expect_kw("INTO")?;
        let table = self.ident()?;
        let columns = if self.eat_symbol(Sym::LParen) {
            let mut cols = vec![self.ident()?];
            while self.eat_symbol(Sym::Comma) {
                cols.push(self.ident()?);
            }
            self.expect_symbol(Sym::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol(Sym::LParen)?;
            let mut row = vec![self.expr()?];
            while self.eat_symbol(Sym::Comma) {
                row.push(self.expr()?);
            }
            self.expect_symbol(Sym::RParen)?;
            rows.push(row);
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        Ok(Statement::Insert {
            table,
            columns,
            rows,
        })
    }

    fn select(&mut self) -> DbResult<SelectStmt> {
        let distinct = self.eat_kw("DISTINCT");
        let mut items = Vec::new();
        loop {
            if self.eat_symbol(Sym::Star) {
                items.push(SelectItem::Star);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("AS") {
                    Some(self.ident()?)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        self.expect_kw("FROM")?;
        let table = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            // `JOIN` and `INNER JOIN` are the same thing here.
            if self.eat_kw("INNER") {
                self.expect_kw("JOIN")?;
            } else if !self.eat_kw("JOIN") {
                break;
            }
            let join_table = self.table_ref()?;
            self.expect_kw("ON")?;
            let on = self.expr()?;
            joins.push(Join {
                table: join_table,
                on,
            });
        }
        let predicate = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            group_by.push(self.expr()?);
            while self.eat_symbol(Sym::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("ORDER") {
            self.expect_kw("BY")?;
            loop {
                let key = self.expr()?;
                let desc = if self.eat_kw("DESC") {
                    true
                } else {
                    self.eat_kw("ASC");
                    false
                };
                order_by.push((key, desc));
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            Some(self.number_usize()?)
        } else {
            None
        };
        let offset = if self.eat_kw("OFFSET") {
            Some(self.number_usize()?)
        } else {
            None
        };
        Ok(SelectStmt {
            distinct,
            items,
            table,
            joins,
            predicate,
            group_by,
            order_by,
            limit,
            offset,
        })
    }

    /// `table [AS alias | alias]`.
    fn table_ref(&mut self) -> DbResult<TableRef> {
        let name = self.ident()?;
        let alias = if self.eat_kw("AS") {
            Some(self.ident()?)
        } else {
            // A bare identifier that is not a clause keyword is an alias.
            match self.peek() {
                Token::Ident(word)
                    if !CLAUSE_KEYWORDS.iter().any(|k| word.eq_ignore_ascii_case(k)) =>
                {
                    Some(self.ident()?)
                }
                _ => None,
            }
        };
        Ok(TableRef { name, alias })
    }

    fn update(&mut self) -> DbResult<Statement> {
        let table = self.ident()?;
        self.expect_kw("SET")?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect_symbol(Sym::Eq)?;
            sets.push((col, self.expr()?));
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        let predicate = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            sets,
            predicate,
        })
    }

    fn delete(&mut self) -> DbResult<Statement> {
        self.expect_kw("FROM")?;
        let table = self.ident()?;
        let predicate = if self.eat_kw("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, predicate })
    }

    // ---- expressions, by descending precedence ----

    fn expr(&mut self) -> DbResult<AstExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> DbResult<AstExpr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("OR") {
            let right = self.and_expr()?;
            left = AstExpr::Binary {
                op: BinaryOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> DbResult<AstExpr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("AND") {
            let right = self.not_expr()?;
            left = AstExpr::Binary {
                op: BinaryOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> DbResult<AstExpr> {
        if self.eat_kw("NOT") {
            let inner = self.not_expr()?;
            return Ok(AstExpr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> DbResult<AstExpr> {
        let left = self.additive()?;
        // `IS [NOT] NULL` postfix.
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            return Ok(AstExpr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        // `[NOT] IN / BETWEEN / LIKE` postfix operators.
        let negated = if self.peek().is_kw("NOT") {
            // Only consume NOT if an IN/BETWEEN/LIKE follows (it may also
            // be a parse error, which the check below surfaces).
            self.advance();
            true
        } else {
            false
        };
        if self.eat_kw("IN") {
            self.expect_symbol(Sym::LParen)?;
            let mut list = vec![self.expr()?];
            while self.eat_symbol(Sym::Comma) {
                list.push(self.expr()?);
            }
            self.expect_symbol(Sym::RParen)?;
            return Ok(AstExpr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_kw("BETWEEN") {
            let low = self.additive()?;
            self.expect_kw("AND")?;
            let high = self.additive()?;
            return Ok(AstExpr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("LIKE") {
            let pattern = match self.advance() {
                Token::StringLit(s) => s,
                other => {
                    return Err(DbError::SqlParse(format!(
                        "LIKE expects a string pattern, found {other:?}"
                    )));
                }
            };
            return Ok(AstExpr::Like {
                expr: Box::new(left),
                pattern,
                negated,
            });
        }
        if negated {
            return Err(self.error("IN, BETWEEN, or LIKE after NOT"));
        }
        let op = match self.peek() {
            Token::Symbol(Sym::Eq) => Some(BinaryOp::Eq),
            Token::Symbol(Sym::Ne) => Some(BinaryOp::Ne),
            Token::Symbol(Sym::Lt) => Some(BinaryOp::Lt),
            Token::Symbol(Sym::Le) => Some(BinaryOp::Le),
            Token::Symbol(Sym::Gt) => Some(BinaryOp::Gt),
            Token::Symbol(Sym::Ge) => Some(BinaryOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.additive()?;
            return Ok(AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            });
        }
        Ok(left)
    }

    fn additive(&mut self) -> DbResult<AstExpr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Symbol(Sym::Plus) => BinaryOp::Add,
                Token::Symbol(Sym::Minus) => BinaryOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.multiplicative()?;
            left = AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> DbResult<AstExpr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Token::Symbol(Sym::Star) => BinaryOp::Mul,
                Token::Symbol(Sym::Slash) => BinaryOp::Div,
                Token::Symbol(Sym::Percent) => BinaryOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.unary()?;
            left = AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> DbResult<AstExpr> {
        if self.eat_symbol(Sym::Minus) {
            let inner = self.unary()?;
            return Ok(AstExpr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> DbResult<AstExpr> {
        match self.advance() {
            Token::Number(n) => {
                if n.contains('.') {
                    n.parse::<f64>()
                        .map(|f| AstExpr::Literal(Value::Float(f)))
                        .map_err(|_| DbError::SqlParse(format!("bad float literal {n}")))
                } else {
                    n.parse::<i64>()
                        .map(|i| AstExpr::Literal(Value::Int(i)))
                        .map_err(|_| DbError::SqlParse(format!("bad integer literal {n}")))
                }
            }
            Token::StringLit(s) => Ok(AstExpr::Literal(Value::Text(s))),
            Token::Symbol(Sym::LParen) => {
                let inner = self.expr()?;
                self.expect_symbol(Sym::RParen)?;
                Ok(inner)
            }
            Token::Ident(name) => {
                if name.eq_ignore_ascii_case("NULL") {
                    return Ok(AstExpr::Literal(Value::Null));
                }
                if name.eq_ignore_ascii_case("TRUE") {
                    return Ok(AstExpr::Literal(Value::Bool(true)));
                }
                if name.eq_ignore_ascii_case("FALSE") {
                    return Ok(AstExpr::Literal(Value::Bool(false)));
                }
                // Function call?
                if self.eat_symbol(Sym::LParen) {
                    if self.eat_symbol(Sym::Star) {
                        self.expect_symbol(Sym::RParen)?;
                        return Ok(AstExpr::Call {
                            name: name.to_ascii_uppercase(),
                            arg: None,
                        });
                    }
                    let arg = self.expr()?;
                    self.expect_symbol(Sym::RParen)?;
                    return Ok(AstExpr::Call {
                        name: name.to_ascii_uppercase(),
                        arg: Some(Box::new(arg)),
                    });
                }
                // Qualified column `alias.column`, encoded as a dotted name
                // the binder splits.
                if self.eat_symbol(Sym::Dot) {
                    let column = self.ident()?;
                    return Ok(AstExpr::Ident(format!(
                        "{}.{}",
                        name.to_ascii_lowercase(),
                        column
                    )));
                }
                Ok(AstExpr::Ident(name.to_ascii_lowercase()))
            }
            other => {
                self.pos -= 1;
                Err(DbError::SqlParse(format!(
                    "expected expression, found {other:?}"
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table_with_nullability() {
        let stmt =
            parse("CREATE TABLE t (id INT, name TEXT NOT NULL, age INT NULL, w FLOAT)").unwrap();
        let Statement::CreateTable { name, columns } = stmt else {
            panic!("wrong variant");
        };
        assert_eq!(name, "t");
        assert_eq!(columns.len(), 4);
        assert!(!columns[0].nullable);
        assert!(!columns[1].nullable);
        assert!(columns[2].nullable);
        assert_eq!(columns[3].dtype, DataType::Float);
    }

    #[test]
    fn create_and_drop_index() {
        let stmt = parse("CREATE INDEX i ON t (col)").unwrap();
        assert_eq!(
            stmt,
            Statement::CreateIndex {
                name: "i".into(),
                table: "t".into(),
                column: "col".into(),
            }
        );
        assert_eq!(
            parse("DROP INDEX i;").unwrap(),
            Statement::DropIndex { name: "i".into() }
        );
        assert_eq!(
            parse("DROP TABLE t").unwrap(),
            Statement::DropTable { name: "t".into() }
        );
    }

    #[test]
    fn insert_multi_row_with_columns() {
        let stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (-2, NULL)").unwrap();
        let Statement::Insert {
            table,
            columns,
            rows,
        } = stmt
        else {
            panic!("wrong variant");
        };
        assert_eq!(table, "t");
        assert_eq!(columns, Some(vec!["a".into(), "b".into()]));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], AstExpr::Literal(Value::Int(1)));
        assert_eq!(
            rows[1][0],
            AstExpr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(AstExpr::Literal(Value::Int(2)))
            }
        );
        assert_eq!(rows[1][1], AstExpr::Literal(Value::Null));
    }

    #[test]
    fn select_full_clause_set() {
        let stmt = parse(
            "SELECT a, b AS bee FROM t WHERE a > 1 AND b IS NOT NULL \
             ORDER BY a DESC, b LIMIT 5 OFFSET 10",
        )
        .unwrap();
        let Statement::Select(sel) = stmt else {
            panic!("wrong variant");
        };
        assert_eq!(sel.items.len(), 2);
        assert!(matches!(
            &sel.items[1],
            SelectItem::Expr { alias: Some(a), .. } if a == "bee"
        ));
        assert!(sel.predicate.is_some());
        assert_eq!(sel.order_by.len(), 2);
        assert!(sel.order_by[0].1);
        assert!(!sel.order_by[1].1);
        assert_eq!(sel.limit, Some(5));
        assert_eq!(sel.offset, Some(10));
    }

    #[test]
    fn select_star_and_aggregates() {
        let stmt = parse("SELECT * FROM t").unwrap();
        let Statement::Select(sel) = stmt else {
            panic!();
        };
        assert_eq!(sel.items, vec![SelectItem::Star]);

        let stmt = parse("SELECT age, COUNT(*), AVG(id) FROM t GROUP BY age").unwrap();
        let Statement::Select(sel) = stmt else {
            panic!();
        };
        assert_eq!(sel.group_by.len(), 1);
        assert!(matches!(
            &sel.items[1],
            SelectItem::Expr { expr: AstExpr::Call { name, arg: None }, .. } if name == "COUNT"
        ));
    }

    #[test]
    fn operator_precedence() {
        // a OR b AND c  ⇒  a OR (b AND c)
        let Statement::Select(sel) = parse("SELECT * FROM t WHERE a OR b AND c").unwrap() else {
            panic!();
        };
        let AstExpr::Binary {
            op: BinaryOp::Or,
            right,
            ..
        } = sel.predicate.unwrap()
        else {
            panic!("OR should be outermost");
        };
        assert!(matches!(
            *right,
            AstExpr::Binary {
                op: BinaryOp::And,
                ..
            }
        ));
        // 1 + 2 * 3  ⇒  1 + (2 * 3)
        let Statement::Select(sel) = parse("SELECT 1 + 2 * 3 FROM t").unwrap() else {
            panic!();
        };
        let SelectItem::Expr { expr, .. } = &sel.items[0] else {
            panic!();
        };
        assert!(matches!(
            expr,
            AstExpr::Binary {
                op: BinaryOp::Add,
                ..
            }
        ));
    }

    #[test]
    fn parenthesised_expressions() {
        let Statement::Select(sel) = parse("SELECT (1 + 2) * 3 FROM t").unwrap() else {
            panic!();
        };
        let SelectItem::Expr { expr, .. } = &sel.items[0] else {
            panic!();
        };
        assert!(matches!(
            expr,
            AstExpr::Binary {
                op: BinaryOp::Mul,
                ..
            }
        ));
    }

    #[test]
    fn update_and_delete() {
        let stmt = parse("UPDATE t SET a = a + 1, b = 'x' WHERE id = 3").unwrap();
        let Statement::Update {
            table,
            sets,
            predicate,
        } = stmt
        else {
            panic!();
        };
        assert_eq!(table, "t");
        assert_eq!(sets.len(), 2);
        assert!(predicate.is_some());

        let stmt = parse("DELETE FROM t WHERE a IS NULL").unwrap();
        assert!(matches!(stmt, Statement::Delete { .. }));
        let stmt = parse("DELETE FROM t").unwrap();
        let Statement::Delete { predicate, .. } = stmt else {
            panic!();
        };
        assert!(predicate.is_none());
    }

    #[test]
    fn in_between_like_postfix_operators() {
        let Statement::Select(sel) =
            parse("SELECT * FROM t WHERE a IN (1, 2, 3) AND b NOT IN ('x')").unwrap()
        else {
            panic!();
        };
        let AstExpr::Binary { left, right, .. } = sel.predicate.unwrap() else {
            panic!();
        };
        assert!(matches!(
            *left,
            AstExpr::InList { negated: false, ref list, .. } if list.len() == 3
        ));
        assert!(matches!(*right, AstExpr::InList { negated: true, .. }));

        let Statement::Select(sel) = parse("SELECT * FROM t WHERE a BETWEEN 1 AND 10").unwrap()
        else {
            panic!();
        };
        assert!(matches!(
            sel.predicate.unwrap(),
            AstExpr::Between { negated: false, .. }
        ));
        // BETWEEN binds tighter than the surrounding AND.
        let Statement::Select(sel) =
            parse("SELECT * FROM t WHERE a NOT BETWEEN 1 AND 10 AND b = 2").unwrap()
        else {
            panic!();
        };
        let AstExpr::Binary {
            op: BinaryOp::And,
            left,
            ..
        } = sel.predicate.unwrap()
        else {
            panic!("outer AND expected");
        };
        assert!(matches!(*left, AstExpr::Between { negated: true, .. }));

        let Statement::Select(sel) =
            parse("SELECT * FROM t WHERE name LIKE 'a%' OR name NOT LIKE '_b'").unwrap()
        else {
            panic!();
        };
        assert!(sel.predicate.is_some());
        // LIKE requires a string literal pattern.
        assert!(parse("SELECT * FROM t WHERE a LIKE 5").is_err());
        // Dangling NOT without IN/BETWEEN/LIKE.
        assert!(parse("SELECT * FROM t WHERE a NOT 5").is_err());
    }

    #[test]
    fn select_distinct_flag() {
        let Statement::Select(sel) = parse("SELECT DISTINCT a FROM t").unwrap() else {
            panic!();
        };
        assert!(sel.distinct);
        let Statement::Select(sel) = parse("SELECT a FROM t").unwrap() else {
            panic!();
        };
        assert!(!sel.distinct);
    }

    #[test]
    fn txn_statements() {
        assert_eq!(parse("BEGIN").unwrap(), Statement::Begin);
        assert_eq!(parse("COMMIT;").unwrap(), Statement::Commit);
        assert_eq!(parse("rollback").unwrap(), Statement::Rollback);
    }

    #[test]
    fn errors_are_descriptive() {
        let err = parse("SELECT FROM").unwrap_err().to_string();
        assert!(err.contains("expected"), "{err}");
        assert!(parse("CREATE VIEW v").is_err());
        assert!(parse("SELECT * FROM t one two").is_err()); // second bare word cannot be an alias
        assert!(parse("INSERT INTO t VALUES").is_err());
        assert!(parse("CREATE TABLE t (a DECIMAL)").is_err());
    }

    #[test]
    fn keywords_not_usable_as_bare_expression() {
        // `WHERE` with nothing after it.
        assert!(parse("SELECT * FROM t WHERE").is_err());
    }
}
