//! SQL tokenisation.

use crate::error::{DbError, DbResult};

/// Punctuation and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `.`
    Dot,
}

/// One lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are recognised by the parser,
    /// case-insensitively).
    Ident(String),
    /// Numeric literal, kept as text until the parser types it.
    Number(String),
    /// String literal with quotes and escapes resolved.
    StringLit(String),
    /// Punctuation / operator.
    Symbol(Sym),
    /// End of input.
    Eof,
}

impl Token {
    /// Whether this token is the given keyword (case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenise SQL text. Always ends with [`Token::Eof`].
pub fn lex(input: &str) -> DbResult<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                tokens.push(Token::Symbol(Sym::LParen));
                i += 1;
            }
            b')' => {
                tokens.push(Token::Symbol(Sym::RParen));
                i += 1;
            }
            b',' => {
                tokens.push(Token::Symbol(Sym::Comma));
                i += 1;
            }
            b';' => {
                tokens.push(Token::Symbol(Sym::Semi));
                i += 1;
            }
            b'*' => {
                tokens.push(Token::Symbol(Sym::Star));
                i += 1;
            }
            b'=' => {
                tokens.push(Token::Symbol(Sym::Eq));
                i += 1;
            }
            b'+' => {
                tokens.push(Token::Symbol(Sym::Plus));
                i += 1;
            }
            b'-' => {
                tokens.push(Token::Symbol(Sym::Minus));
                i += 1;
            }
            b'/' => {
                tokens.push(Token::Symbol(Sym::Slash));
                i += 1;
            }
            b'%' => {
                tokens.push(Token::Symbol(Sym::Percent));
                i += 1;
            }
            b'.' => {
                tokens.push(Token::Symbol(Sym::Dot));
                i += 1;
            }
            b'!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token::Symbol(Sym::Ne));
                i += 2;
            }
            b'<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    tokens.push(Token::Symbol(Sym::Le));
                    i += 2;
                }
                Some(b'>') => {
                    tokens.push(Token::Symbol(Sym::Ne));
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Symbol(Sym::Lt));
                    i += 1;
                }
            },
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Symbol(Sym::Ge));
                    i += 2;
                } else {
                    tokens.push(Token::Symbol(Sym::Gt));
                    i += 1;
                }
            }
            b'\'' => {
                // String literal; '' escapes a quote.
                let mut out = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(DbError::SqlParse("unterminated string literal".into()));
                    }
                    if bytes[i] == b'\'' {
                        if bytes.get(i + 1) == Some(&b'\'') {
                            out.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        // Copy a full UTF-8 character.
                        let s = &input[i..];
                        let ch = s.chars().next().expect("in-bounds");
                        out.push(ch);
                        i += ch.len_utf8();
                    }
                }
                tokens.push(Token::StringLit(out));
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                if i < bytes.len() && bytes[i] == b'.' {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                tokens.push(Token::Number(input[start..i].to_string()));
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_string()));
            }
            b'"' => {
                // Quoted identifier (kept verbatim).
                let start = i + 1;
                i += 1;
                while i < bytes.len() && bytes[i] != b'"' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(DbError::SqlParse("unterminated quoted identifier".into()));
                }
                tokens.push(Token::Ident(input[start..i].to_string()));
                i += 1;
            }
            other => {
                return Err(DbError::SqlParse(format!(
                    "unexpected character {:?} at byte {i}",
                    other as char
                )));
            }
        }
    }
    tokens.push(Token::Eof);
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_a_full_statement() {
        let toks = lex("SELECT a, b FROM t WHERE a >= 1.5 AND b <> 'it''s';").unwrap();
        assert!(toks.contains(&Token::Symbol(Sym::Ge)));
        assert!(toks.contains(&Token::Symbol(Sym::Ne)));
        assert!(toks.contains(&Token::Number("1.5".into())));
        assert!(toks.contains(&Token::StringLit("it's".into())));
        assert_eq!(toks.last(), Some(&Token::Eof));
    }

    #[test]
    fn comments_and_whitespace_are_skipped() {
        let toks = lex("SELECT -- all the things\n  *\tFROM t").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("SELECT".into()),
                Token::Symbol(Sym::Star),
                Token::Ident("FROM".into()),
                Token::Ident("t".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn minus_vs_comment_disambiguation() {
        let toks = lex("1 - 2").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Number("1".into()),
                Token::Symbol(Sym::Minus),
                Token::Number("2".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn not_equals_spellings() {
        assert_eq!(lex("<>").unwrap()[0], Token::Symbol(Sym::Ne));
        assert_eq!(lex("!=").unwrap()[0], Token::Symbol(Sym::Ne));
    }

    #[test]
    fn quoted_identifiers() {
        let toks = lex("\"Weird Name\"").unwrap();
        assert_eq!(toks[0], Token::Ident("Weird Name".into()));
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(lex("'oops").is_err());
        assert!(lex("\"oops").is_err());
        assert!(lex("SELECT ?").is_err());
    }

    #[test]
    fn unicode_in_strings() {
        let toks = lex("'héllo — wörld'").unwrap();
        assert_eq!(toks[0], Token::StringLit("héllo — wörld".into()));
    }

    #[test]
    fn kw_matching_is_case_insensitive() {
        let toks = lex("select").unwrap();
        assert!(toks[0].is_kw("SELECT"));
        assert!(toks[0].is_kw("select"));
        assert!(!toks[0].is_kw("FROM"));
    }
}
