//! Name resolution and plan construction.
//!
//! The binder turns parsed [`AstExpr`]s into executable [`Expr`]s (column
//! names → positions, with type-existence checks against the catalog) and
//! assembles query plans:
//!
//! ```text
//! Scan (seq or index) → Filter → Sort → Limit → Project
//!                              ↘ Aggregate (replaces Sort/Project for GROUP BY)
//! ```
//!
//! Index selection is a simple but real optimisation: the binder walks the
//! top-level `AND` chain of the `WHERE` clause looking for
//! `column ⟨cmp⟩ literal` conjuncts over indexed columns, and when it finds
//! one converts it into B+tree bounds. The full predicate is kept as a
//! residual filter, so the optimisation can never change results.

use std::ops::Bound;

use crate::catalog::{Catalog, TableId, TableMeta};
use crate::error::{DbError, DbResult};
use crate::exec::{AggExpr, AggFunc, Plan, SortKey};
use crate::expr::{BinOp, Expr, UnaryOp as ExprUnaryOp};
use crate::row::Row;
use crate::schema::Schema;
use crate::value::Value;

use super::ast::{AstExpr, BinaryOp, SelectItem, SelectStmt, UnaryOp};

/// A bound `INSERT`: checked rows ready for storage.
#[derive(Debug, Clone)]
pub struct BoundInsert {
    /// Target table.
    pub table: TableId,
    /// Schema-checked rows in column order.
    pub rows: Vec<Row>,
}

/// A bound `UPDATE`.
#[derive(Debug, Clone)]
pub struct BoundUpdate {
    /// Target table.
    pub table: TableId,
    /// `(column position, value expression)` assignments.
    pub sets: Vec<(usize, Expr)>,
    /// Row filter (`None` = all rows).
    pub predicate: Option<Expr>,
}

/// A bound `DELETE`.
#[derive(Debug, Clone)]
pub struct BoundDelete {
    /// Target table.
    pub table: TableId,
    /// Row filter (`None` = all rows).
    pub predicate: Option<Expr>,
}

fn binop(op: BinaryOp) -> BinOp {
    match op {
        BinaryOp::Eq => BinOp::Eq,
        BinaryOp::Ne => BinOp::Ne,
        BinaryOp::Lt => BinOp::Lt,
        BinaryOp::Le => BinOp::Le,
        BinaryOp::Gt => BinOp::Gt,
        BinaryOp::Ge => BinOp::Ge,
        BinaryOp::And => BinOp::And,
        BinaryOp::Or => BinOp::Or,
        BinaryOp::Add => BinOp::Add,
        BinaryOp::Sub => BinOp::Sub,
        BinaryOp::Mul => BinOp::Mul,
        BinaryOp::Div => BinOp::Div,
        BinaryOp::Mod => BinOp::Mod,
    }
}

/// Column-name resolution strategy: a single schema for DML statements, or
/// a multi-table [`BindContext`] for `SELECT`s with joins.
trait Resolve {
    fn resolve(&self, name: &str) -> DbResult<usize>;
}

impl Resolve for Schema {
    fn resolve(&self, name: &str) -> DbResult<usize> {
        self.index_of(name)
            .ok_or_else(|| DbError::SqlBind(format!("unknown column {name:?}")))
    }
}

/// Name resolution over the tables of a `FROM ... JOIN ...` clause.
/// Column positions are global: table 0's columns first, then table 1's, …
pub struct BindContext {
    /// `(alias, schema, global offset)` per table, in join order.
    tables: Vec<(String, Schema, usize)>,
}

impl BindContext {
    /// Start with the first `FROM` table.
    pub fn new() -> BindContext {
        BindContext { tables: Vec::new() }
    }

    /// Append a table; fails on duplicate aliases.
    pub fn push(&mut self, alias: &str, schema: Schema) -> DbResult<()> {
        if self.tables.iter().any(|(a, _, _)| a == alias) {
            return Err(DbError::SqlBind(format!("duplicate table alias {alias:?}")));
        }
        let offset = self.arity();
        self.tables.push((alias.to_string(), schema, offset));
        Ok(())
    }

    /// Total number of columns across all tables.
    pub fn arity(&self) -> usize {
        self.tables
            .last()
            .map(|(_, s, off)| off + s.arity())
            .unwrap_or(0)
    }

    /// Output column names: plain for a single table, alias-qualified once
    /// a join makes collisions likely.
    pub fn combined_columns(&self) -> Vec<String> {
        let qualify = self.tables.len() > 1;
        let mut out = Vec::with_capacity(self.arity());
        for (alias, schema, _) in &self.tables {
            for col in schema.columns() {
                out.push(if qualify {
                    format!("{alias}.{}", col.name)
                } else {
                    col.name.clone()
                });
            }
        }
        out
    }
}

impl Default for BindContext {
    fn default() -> Self {
        Self::new()
    }
}

impl Resolve for BindContext {
    fn resolve(&self, name: &str) -> DbResult<usize> {
        if let Some((alias, column)) = name.split_once('.') {
            let (_, schema, offset) = self
                .tables
                .iter()
                .find(|(a, _, _)| a == alias)
                .ok_or_else(|| DbError::SqlBind(format!("unknown table alias {alias:?}")))?;
            return schema
                .index_of(column)
                .map(|i| offset + i)
                .ok_or_else(|| DbError::SqlBind(format!("unknown column {alias:?}.{column:?}")));
        }
        let mut found = None;
        for (alias, schema, offset) in &self.tables {
            if let Some(i) = schema.index_of(name) {
                if found.is_some() {
                    return Err(DbError::SqlBind(format!(
                        "column {name:?} is ambiguous; qualify it (e.g. {alias}.{name})"
                    )));
                }
                found = Some(offset + i);
            }
        }
        found.ok_or_else(|| DbError::SqlBind(format!("unknown column {name:?}")))
    }
}

/// Bind a scalar expression against a schema. Aggregate calls are rejected
/// here; they are only legal in a `SELECT` list handled by [`bind_select`].
pub fn bind_expr(ast: &AstExpr, schema: &Schema) -> DbResult<Expr> {
    bind_expr_res(ast, schema)
}

fn bind_expr_res(ast: &AstExpr, res: &dyn Resolve) -> DbResult<Expr> {
    match ast {
        AstExpr::Ident(name) => Ok(Expr::Column(res.resolve(name)?)),
        AstExpr::Literal(v) => Ok(Expr::Literal(v.clone())),
        AstExpr::Unary { op, expr } => {
            let inner = bind_expr_res(expr, res)?;
            let op = match op {
                UnaryOp::Neg => ExprUnaryOp::Neg,
                UnaryOp::Not => ExprUnaryOp::Not,
            };
            Ok(Expr::Unary(op, Box::new(inner)))
        }
        AstExpr::Binary { op, left, right } => Ok(Expr::Binary(
            binop(*op),
            Box::new(bind_expr_res(left, res)?),
            Box::new(bind_expr_res(right, res)?),
        )),
        AstExpr::IsNull { expr, negated } => Ok(Expr::IsNull {
            expr: Box::new(bind_expr_res(expr, res)?),
            negated: *negated,
        }),
        AstExpr::Call { name, .. } => Err(DbError::SqlBind(format!(
            "aggregate {name} is not allowed in this context"
        ))),
        // `x IN (a, b, c)` lowers to an OR chain of equalities, which gives
        // SQL's NULL semantics for free (NULL operands propagate through
        // the comparisons and Kleene OR).
        AstExpr::InList {
            expr,
            list,
            negated,
        } => {
            let target = bind_expr_res(expr, res)?;
            let mut chain: Option<Expr> = None;
            for item in list {
                let eq = target.clone().eq(bind_expr_res(item, res)?);
                chain = Some(match chain {
                    Some(acc) => acc.or(eq),
                    None => eq,
                });
            }
            let chain = chain.ok_or_else(|| DbError::SqlBind("empty IN list".into()))?;
            Ok(if *negated { chain.not() } else { chain })
        }
        // `x BETWEEN a AND b` lowers to `x >= a AND x <= b`.
        AstExpr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let target = bind_expr_res(expr, res)?;
            let lo = bind_expr_res(low, res)?;
            let hi = bind_expr_res(high, res)?;
            let range = target.clone().ge(lo).and(target.le(hi));
            Ok(if *negated { range.not() } else { range })
        }
        AstExpr::Like {
            expr,
            pattern,
            negated,
        } => Ok(Expr::Like {
            expr: Box::new(bind_expr_res(expr, res)?),
            pattern: pattern.clone(),
            negated: *negated,
        }),
    }
}

fn agg_func(name: &str) -> Option<AggFunc> {
    match name {
        "COUNT" => Some(AggFunc::Count),
        "SUM" => Some(AggFunc::Sum),
        "AVG" => Some(AggFunc::Avg),
        "MIN" => Some(AggFunc::Min),
        "MAX" => Some(AggFunc::Max),
        _ => None,
    }
}

fn contains_aggregate(ast: &AstExpr) -> bool {
    match ast {
        AstExpr::Call { name, .. } => agg_func(name).is_some(),
        AstExpr::Unary { expr, .. } => contains_aggregate(expr),
        AstExpr::Binary { left, right, .. } => {
            contains_aggregate(left) || contains_aggregate(right)
        }
        AstExpr::IsNull { expr, .. } | AstExpr::Like { expr, .. } => contains_aggregate(expr),
        AstExpr::InList { expr, list, .. } => {
            contains_aggregate(expr) || list.iter().any(contains_aggregate)
        }
        AstExpr::Between {
            expr, low, high, ..
        } => contains_aggregate(expr) || contains_aggregate(low) || contains_aggregate(high),
        AstExpr::Ident(_) | AstExpr::Literal(_) => false,
    }
}

fn default_name(ast: &AstExpr, i: usize) -> String {
    match ast {
        // `p.name` projects as `name`, per standard SQL.
        AstExpr::Ident(name) => name
            .rsplit_once('.')
            .map(|(_, col)| col.to_string())
            .unwrap_or_else(|| name.clone()),
        AstExpr::Call { name, .. } => name.to_ascii_lowercase(),
        _ => format!("expr{i}"),
    }
}

/// Bind a `SELECT` into an executable plan.
pub fn bind_select(stmt: &SelectStmt, catalog: &Catalog) -> DbResult<Plan> {
    // Name-resolution context: the FROM table plus every joined table.
    let mut ctx = BindContext::new();
    let base_meta = catalog.require_table(&stmt.table.name)?;
    ctx.push(stmt.table.effective_alias(), base_meta.schema.clone())?;
    for join in &stmt.joins {
        let meta = catalog.require_table(&join.table.name)?;
        ctx.push(join.table.effective_alias(), meta.schema.clone())?;
    }

    // Base plan: the FROM table's scan (index-selected when single-table),
    // then each join. Equi-joins on columns of the two sides become hash
    // joins; anything else falls back to a nested-loop join.
    let mut plan = if stmt.joins.is_empty() {
        choose_access_path(stmt.predicate.as_ref(), base_meta, catalog)?
    } else {
        Plan::SeqScan {
            table: base_meta.id,
        }
    };
    let mut left_arity = base_meta.schema.arity();
    for join in &stmt.joins {
        let meta = catalog.require_table(&join.table.name)?;
        let right_arity = meta.schema.arity();
        // Bind ON against the tables joined so far plus this one — which
        // is exactly the ctx prefix; later tables would resolve too, so
        // validate indices stay in range.
        let on = bind_expr_res(&join.on, &ctx)?;
        let right = Plan::SeqScan { table: meta.id };
        plan = match equi_join_keys(&on, left_arity, left_arity + right_arity) {
            Some((left_key, right_key)) => Plan::HashJoin {
                left: Box::new(plan),
                right: Box::new(right),
                left_key,
                right_key,
            },
            None => Plan::NestedLoopJoin {
                left: Box::new(plan),
                right: Box::new(right),
                on,
            },
        };
        left_arity += right_arity;
    }

    let predicate = stmt
        .predicate
        .as_ref()
        .map(|p| bind_expr_res(p, &ctx))
        .transpose()?;
    if let Some(pred) = predicate {
        plan = Plan::Filter {
            input: Box::new(plan),
            predicate: pred,
        };
    }

    let has_aggregate = !stmt.group_by.is_empty()
        || stmt.items.iter().any(|item| match item {
            SelectItem::Expr { expr, .. } => contains_aggregate(expr),
            SelectItem::Star => false,
        });

    if has_aggregate {
        if !stmt.order_by.is_empty() {
            return Err(DbError::SqlBind(
                "ORDER BY with GROUP BY/aggregates is not supported; grouped output \
                 is already ordered by group key"
                    .into(),
            ));
        }
        if stmt.distinct {
            return Err(DbError::SqlBind(
                "DISTINCT with GROUP BY/aggregates is redundant and not supported".into(),
            ));
        }
        let group_by = stmt
            .group_by
            .iter()
            .map(|g| bind_expr_res(g, &ctx))
            .collect::<DbResult<Vec<Expr>>>()?;
        let mut aggregates = Vec::new();
        let mut names = Vec::new();
        // Output layout: group columns first (in GROUP BY order), then
        // aggregates — which means every projected group expression must
        // appear in the GROUP BY list, and we reorder the projection to the
        // canonical layout.
        let mut group_names: Vec<Option<String>> = vec![None; group_by.len()];
        for (i, item) in stmt.items.iter().enumerate() {
            let SelectItem::Expr { expr, alias } = item else {
                return Err(DbError::SqlBind(
                    "SELECT * cannot be combined with aggregates".into(),
                ));
            };
            match expr {
                AstExpr::Call { name, arg } if agg_func(name).is_some() => {
                    let func = agg_func(name).expect("checked");
                    let bound_arg = arg.as_ref().map(|a| bind_expr_res(a, &ctx)).transpose()?;
                    if bound_arg.is_none() && func != AggFunc::Count {
                        return Err(DbError::SqlBind(format!("{name}(*) is not defined")));
                    }
                    aggregates.push(AggExpr {
                        func,
                        arg: bound_arg,
                    });
                    names.push(alias.clone().unwrap_or_else(|| default_name(expr, i)));
                }
                other => {
                    let bound = bind_expr_res(other, &ctx)?;
                    let pos = group_by.iter().position(|g| *g == bound).ok_or_else(|| {
                        DbError::SqlBind(format!(
                            "non-aggregate projection {other:?} must appear in GROUP BY"
                        ))
                    })?;
                    group_names[pos] =
                        Some(alias.clone().unwrap_or_else(|| default_name(other, i)));
                }
            }
        }
        let mut all_names: Vec<String> = group_names
            .into_iter()
            .enumerate()
            .map(|(i, n)| n.unwrap_or_else(|| format!("group{i}")))
            .collect();
        all_names.append(&mut names);
        plan = Plan::Aggregate {
            input: Box::new(plan),
            group_by,
            aggregates,
            names: all_names,
        };
        if stmt.limit.is_some() || stmt.offset.is_some() {
            plan = Plan::Limit {
                input: Box::new(plan),
                offset: stmt.offset.unwrap_or(0),
                limit: stmt.limit,
            };
        }
        return Ok(plan);
    }

    // Non-aggregate pipeline: sort and limit on the base schema, then
    // project (so ORDER BY can use non-projected columns).
    if !stmt.order_by.is_empty() {
        let keys = stmt
            .order_by
            .iter()
            .map(|(e, desc)| {
                Ok(SortKey {
                    expr: bind_expr_res(e, &ctx)?,
                    descending: *desc,
                })
            })
            .collect::<DbResult<Vec<SortKey>>>()?;
        plan = Plan::Sort {
            input: Box::new(plan),
            keys,
        };
    }
    if stmt.limit.is_some() || stmt.offset.is_some() {
        plan = Plan::Limit {
            input: Box::new(plan),
            offset: stmt.offset.unwrap_or(0),
            limit: stmt.limit,
        };
    }
    // A plain single-table `SELECT *` keeps the scan's schema; everything
    // else (including any join) projects explicitly so output names are
    // well-defined.
    let is_plain_star =
        stmt.items.len() == 1 && stmt.items[0] == SelectItem::Star && stmt.joins.is_empty();
    if !is_plain_star {
        let combined = ctx.combined_columns();
        let mut exprs = Vec::new();
        let mut names = Vec::new();
        for (i, item) in stmt.items.iter().enumerate() {
            match item {
                SelectItem::Star => {
                    for (idx, name) in combined.iter().enumerate() {
                        exprs.push(Expr::Column(idx));
                        names.push(name.clone());
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    exprs.push(bind_expr_res(expr, &ctx)?);
                    names.push(alias.clone().unwrap_or_else(|| default_name(expr, i)));
                }
            }
        }
        plan = Plan::Project {
            input: Box::new(plan),
            exprs,
            names,
        };
    }
    if stmt.distinct {
        plan = Plan::Distinct {
            input: Box::new(plan),
        };
    }
    Ok(plan)
}

/// If `on` is exactly `Column(i) = Column(j)` with one side in the left
/// input (`< left_arity`) and the other in the right (`< total_arity`),
/// return hash-join keys: the left key as-is, the right key shifted to the
/// right row's local coordinates.
fn equi_join_keys(on: &Expr, left_arity: usize, total_arity: usize) -> Option<(Expr, Expr)> {
    let Expr::Binary(BinOp::Eq, a, b) = on else {
        return None;
    };
    let (Expr::Column(i), Expr::Column(j)) = (&**a, &**b) else {
        return None;
    };
    let (i, j) = (*i, *j);
    if i < left_arity && j >= left_arity && j < total_arity {
        Some((Expr::Column(i), Expr::Column(j - left_arity)))
    } else if j < left_arity && i >= left_arity && i < total_arity {
        Some((Expr::Column(j), Expr::Column(i - left_arity)))
    } else {
        None
    }
}

/// Pick the base scan for a query: an index range scan when some top-level
/// conjunct is `indexed_column ⟨cmp⟩ literal`, else a sequential scan.
fn choose_access_path(
    predicate: Option<&AstExpr>,
    meta: &TableMeta,
    catalog: &Catalog,
) -> DbResult<Plan> {
    let seq = Plan::SeqScan { table: meta.id };
    let Some(predicate) = predicate else {
        return Ok(seq);
    };
    let mut conjuncts = Vec::new();
    collect_conjuncts(predicate, &mut conjuncts);
    // Prefer equality pins over ranges.
    let mut best: Option<(usize, Bound<Value>, Bound<Value>, bool)> = None;
    for conj in conjuncts {
        if let Some((col, lo, hi, is_eq)) = conjunct_bounds(conj, meta) {
            let better = match &best {
                None => true,
                Some((_, _, _, best_eq)) => is_eq && !best_eq,
            };
            if better {
                best = Some((col, lo, hi, is_eq));
            }
        }
    }
    if let Some((col, lo, hi, _)) = best {
        if let Some(index) = catalog.indexes_for(meta.id).find(|i| i.column == col) {
            return Ok(Plan::IndexScan {
                table: meta.id,
                index: index.id,
                lo,
                hi,
            });
        }
    }
    Ok(seq)
}

fn collect_conjuncts<'a>(ast: &'a AstExpr, out: &mut Vec<&'a AstExpr>) {
    if let AstExpr::Binary {
        op: BinaryOp::And,
        left,
        right,
    } = ast
    {
        collect_conjuncts(left, out);
        collect_conjuncts(right, out);
    } else {
        out.push(ast);
    }
}

/// If `ast` is `column ⟨cmp⟩ literal` (either orientation) over a column of
/// `meta`, return `(column, lo, hi, is_equality)` B+tree bounds.
fn conjunct_bounds(
    ast: &AstExpr,
    meta: &TableMeta,
) -> Option<(usize, Bound<Value>, Bound<Value>, bool)> {
    // `col BETWEEN lit AND lit` gives both bounds at once.
    if let AstExpr::Between {
        expr,
        low,
        high,
        negated: false,
    } = ast
    {
        if let (AstExpr::Ident(name), AstExpr::Literal(lo), AstExpr::Literal(hi)) =
            (&**expr, &**low, &**high)
        {
            if !lo.is_null() && !hi.is_null() {
                let col = meta.schema.index_of(name)?;
                return Some((
                    col,
                    Bound::Included(lo.clone()),
                    Bound::Included(hi.clone()),
                    false,
                ));
            }
        }
        return None;
    }
    let AstExpr::Binary { op, left, right } = ast else {
        return None;
    };
    let (name, lit, op) = match (&**left, &**right) {
        (AstExpr::Ident(name), AstExpr::Literal(v)) => (name, v, *op),
        (AstExpr::Literal(v), AstExpr::Ident(name)) => (name, v, flip(*op)?),
        _ => return None,
    };
    if lit.is_null() {
        return None; // NULL comparisons never match anything
    }
    let col = meta.schema.index_of(name)?;
    let bounds = match op {
        BinaryOp::Eq => (
            Bound::Included(lit.clone()),
            Bound::Included(lit.clone()),
            true,
        ),
        BinaryOp::Lt => (Bound::Unbounded, Bound::Excluded(lit.clone()), false),
        BinaryOp::Le => (Bound::Unbounded, Bound::Included(lit.clone()), false),
        BinaryOp::Gt => (Bound::Excluded(lit.clone()), Bound::Unbounded, false),
        BinaryOp::Ge => (Bound::Included(lit.clone()), Bound::Unbounded, false),
        _ => return None,
    };
    Some((col, bounds.0, bounds.1, bounds.2))
}

/// Mirror a comparison so the column is on the left: `5 < a` ⇒ `a > 5`.
fn flip(op: BinaryOp) -> Option<BinaryOp> {
    Some(match op {
        BinaryOp::Eq => BinaryOp::Eq,
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::Le => BinaryOp::Ge,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::Ge => BinaryOp::Le,
        _ => return None,
    })
}

/// Bind an `INSERT`'s rows: constant-fold value expressions, map explicit
/// column lists to schema order (missing columns become `NULL`), and
/// type-check against the schema.
pub fn bind_insert(
    table: &str,
    columns: Option<&[String]>,
    rows: &[Vec<AstExpr>],
    catalog: &Catalog,
) -> DbResult<BoundInsert> {
    let meta = catalog.require_table(table)?;
    let schema = &meta.schema;
    // Map from value position to schema position.
    let positions: Vec<usize> = match columns {
        None => (0..schema.arity()).collect(),
        Some(cols) => {
            let mut seen = std::collections::HashSet::new();
            cols.iter()
                .map(|c| {
                    let idx = schema
                        .index_of(c)
                        .ok_or_else(|| DbError::SqlBind(format!("unknown column {c:?}")))?;
                    if !seen.insert(idx) {
                        return Err(DbError::SqlBind(format!("duplicate column {c:?}")));
                    }
                    Ok(idx)
                })
                .collect::<DbResult<Vec<usize>>>()?
        }
    };
    let empty = Row::from_values([]);
    let empty_schema_check = |ast: &AstExpr| -> DbResult<Value> {
        // VALUES expressions may not reference columns; binding against an
        // impossible schema catches that with a clear error.
        match ast {
            AstExpr::Ident(name) => Err(DbError::SqlBind(format!(
                "column reference {name:?} not allowed in VALUES"
            ))),
            _ => {
                let one_col = Schema::new(vec![crate::schema::Column::nullable(
                    "_",
                    crate::types::DataType::Int,
                )])
                .expect("static schema");
                bind_expr(ast, &one_col)?.eval(&empty)
            }
        }
    };
    let mut bound_rows = Vec::with_capacity(rows.len());
    for row in rows {
        if row.len() != positions.len() {
            return Err(DbError::SqlBind(format!(
                "expected {} values, got {}",
                positions.len(),
                row.len()
            )));
        }
        let mut values = vec![Value::Null; schema.arity()];
        for (ast, &pos) in row.iter().zip(&positions) {
            values[pos] = empty_schema_check(ast)?;
        }
        bound_rows.push(schema.check_row(Row::new(values))?);
    }
    Ok(BoundInsert {
        table: meta.id,
        rows: bound_rows,
    })
}

/// Bind an `UPDATE`.
pub fn bind_update(
    table: &str,
    sets: &[(String, AstExpr)],
    predicate: Option<&AstExpr>,
    catalog: &Catalog,
) -> DbResult<BoundUpdate> {
    let meta = catalog.require_table(table)?;
    let schema = &meta.schema;
    let mut bound_sets = Vec::with_capacity(sets.len());
    let mut seen = std::collections::HashSet::new();
    for (name, ast) in sets {
        let idx = schema
            .index_of(name)
            .ok_or_else(|| DbError::SqlBind(format!("unknown column {name:?}")))?;
        if !seen.insert(idx) {
            return Err(DbError::SqlBind(format!("column {name:?} set twice")));
        }
        bound_sets.push((idx, bind_expr(ast, schema)?));
    }
    let predicate = predicate.map(|p| bind_expr(p, schema)).transpose()?;
    Ok(BoundUpdate {
        table: meta.id,
        sets: bound_sets,
        predicate,
    })
}

/// Bind a `DELETE`.
pub fn bind_delete(
    table: &str,
    predicate: Option<&AstExpr>,
    catalog: &Catalog,
) -> DbResult<BoundDelete> {
    let meta = catalog.require_table(table)?;
    let predicate = predicate.map(|p| bind_expr(p, &meta.schema)).transpose()?;
    Ok(BoundDelete {
        table: meta.id,
        predicate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heap::TableHeap;
    use crate::schema::SchemaBuilder;
    use crate::sql::parser::parse;
    use crate::sql::Statement;
    use crate::types::DataType;

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let schema = SchemaBuilder::new()
            .column("id", DataType::Int)
            .column("name", DataType::Text)
            .nullable_column("age", DataType::Int)
            .build()
            .unwrap();
        let t = cat
            .create_table("people", schema, TableHeap::from_parts(0, 0))
            .unwrap();
        cat.create_index("people_age", t, 2).unwrap();
        cat
    }

    fn bind(sql: &str) -> DbResult<Plan> {
        let Statement::Select(sel) = parse(sql).unwrap() else {
            panic!("not a select");
        };
        bind_select(&sel, &catalog())
    }

    #[test]
    fn star_select_is_a_bare_scan() {
        let plan = bind("SELECT * FROM people").unwrap();
        assert!(matches!(plan, Plan::SeqScan { .. }));
    }

    #[test]
    fn where_on_indexed_column_uses_index_scan() {
        let plan = bind("SELECT * FROM people WHERE age = 30").unwrap();
        let Plan::Filter { input, .. } = plan else {
            panic!("expected residual filter, got {plan:?}");
        };
        assert!(matches!(*input, Plan::IndexScan { .. }), "{input:?}");
    }

    #[test]
    fn range_predicates_produce_index_bounds() {
        for sql in [
            "SELECT * FROM people WHERE age > 21",
            "SELECT * FROM people WHERE 21 < age",
            "SELECT * FROM people WHERE age <= 65 AND name <> 'x'",
        ] {
            let plan = bind(sql).unwrap();
            let Plan::Filter { input, .. } = plan else {
                panic!("{sql}: no filter");
            };
            assert!(matches!(*input, Plan::IndexScan { .. }), "{sql}");
        }
    }

    #[test]
    fn where_on_unindexed_column_stays_sequential() {
        let plan = bind("SELECT * FROM people WHERE name = 'bob'").unwrap();
        let Plan::Filter { input, .. } = plan else {
            panic!();
        };
        assert!(matches!(*input, Plan::SeqScan { .. }));
    }

    #[test]
    fn null_literal_comparison_never_uses_index() {
        let plan = bind("SELECT * FROM people WHERE age = NULL").unwrap();
        let Plan::Filter { input, .. } = plan else {
            panic!();
        };
        assert!(matches!(*input, Plan::SeqScan { .. }));
    }

    #[test]
    fn projection_order_and_names() {
        let plan = bind("SELECT name AS who, id FROM people").unwrap();
        let Plan::Project { names, exprs, .. } = plan else {
            panic!();
        };
        assert_eq!(names, vec!["who", "id"]);
        assert_eq!(exprs, vec![Expr::Column(1), Expr::Column(0)]);
    }

    #[test]
    fn order_by_sorts_before_projecting() {
        let plan = bind("SELECT name FROM people ORDER BY age DESC LIMIT 3").unwrap();
        // Expect Project(Limit(Sort(Scan))).
        let Plan::Project { input, .. } = plan else {
            panic!();
        };
        let Plan::Limit { input, .. } = *input else {
            panic!();
        };
        assert!(matches!(*input, Plan::Sort { .. }));
    }

    #[test]
    fn aggregates_bind_to_aggregate_plan() {
        let plan = bind("SELECT age, COUNT(*) AS n, AVG(id) FROM people GROUP BY age").unwrap();
        let Plan::Aggregate {
            group_by,
            aggregates,
            names,
            ..
        } = plan
        else {
            panic!();
        };
        assert_eq!(group_by, vec![Expr::Column(2)]);
        assert_eq!(aggregates.len(), 2);
        assert_eq!(names, vec!["age", "n", "avg"]);
    }

    #[test]
    fn projecting_ungrouped_column_is_an_error() {
        let err = bind("SELECT name, COUNT(*) FROM people GROUP BY age").unwrap_err();
        assert!(err.to_string().contains("GROUP BY"), "{err}");
    }

    #[test]
    fn order_by_with_group_by_is_rejected() {
        assert!(bind("SELECT age, COUNT(*) FROM people GROUP BY age ORDER BY age").is_err());
    }

    #[test]
    fn unknown_names_are_bind_errors() {
        assert!(bind("SELECT nope FROM people").is_err());
        assert!(bind("SELECT * FROM ghosts").is_err());
        assert!(bind("SELECT LOWER(name) FROM people").is_err());
    }

    #[test]
    fn insert_binding_reorders_and_defaults() {
        let cat = catalog();
        let Statement::Insert {
            table,
            columns,
            rows,
        } = parse("INSERT INTO people (name, id) VALUES ('zed', 9)").unwrap()
        else {
            panic!();
        };
        let bound = bind_insert(&table, columns.as_deref(), &rows, &cat).unwrap();
        assert_eq!(
            bound.rows[0].values,
            vec![Value::Int(9), Value::Text("zed".into()), Value::Null]
        );
    }

    #[test]
    fn insert_rejects_bad_shapes() {
        let cat = catalog();
        let check = |sql: &str| {
            let Statement::Insert {
                table,
                columns,
                rows,
            } = parse(sql).unwrap()
            else {
                panic!();
            };
            bind_insert(&table, columns.as_deref(), &rows, &cat)
        };
        // NOT NULL violation (id missing).
        assert!(check("INSERT INTO people (name) VALUES ('x')").is_err());
        // Arity mismatch.
        assert!(check("INSERT INTO people VALUES (1, 'x')").is_err());
        // Type mismatch.
        assert!(check("INSERT INTO people VALUES ('x', 'y', 3)").is_err());
        // Duplicate column.
        assert!(check("INSERT INTO people (id, id, name) VALUES (1, 2, 'x')").is_err());
        // Column reference in VALUES.
        assert!(check("INSERT INTO people VALUES (id, 'x', 3)").is_err());
        // Constant arithmetic is allowed.
        assert!(check("INSERT INTO people VALUES (1 + 1, 'x', -3)").is_ok());
    }

    #[test]
    fn update_binding() {
        let cat = catalog();
        let Statement::Update {
            table,
            sets,
            predicate,
        } = parse("UPDATE people SET age = age + 1 WHERE id = 1").unwrap()
        else {
            panic!();
        };
        let bound = bind_update(&table, &sets, predicate.as_ref(), &cat).unwrap();
        assert_eq!(bound.sets[0].0, 2);
        assert!(bound.predicate.is_some());
        // Setting the same column twice is rejected.
        let Statement::Update { table, sets, .. } =
            parse("UPDATE people SET age = 1, age = 2").unwrap()
        else {
            panic!();
        };
        assert!(bind_update(&table, &sets, None, &cat).is_err());
    }

    #[test]
    fn delete_binding() {
        let cat = catalog();
        let Statement::Delete { table, predicate } =
            parse("DELETE FROM people WHERE age IS NULL").unwrap()
        else {
            panic!();
        };
        let bound = bind_delete(&table, predicate.as_ref(), &cat).unwrap();
        assert!(bound.predicate.is_some());
    }
}
