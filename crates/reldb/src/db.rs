//! The [`Database`] facade: catalog + buffer pool + WAL + indexes + SQL.
//!
//! ## Durability model
//!
//! On disk, every checkpoint is a numbered *generation* published through a
//! `CURRENT` pointer file (the LevelDB `CURRENT`/`MANIFEST` pattern):
//!
//! * `CURRENT` — ASCII generation number `G` of the live checkpoint;
//! * `pages.<G>.snap` + `catalog.<G>.snap` — generation `G`'s snapshot;
//! * `wal.<G>.log` — every committed mutation since that snapshot;
//! * `pages.db` — the *working* page file the buffer pool reads and
//!   writes, rebuilt from the snapshot on every open (scratch state).
//!
//! [`Database::open`] reads `CURRENT` (0 if absent), restores that
//! generation's snapshot into the working file, and replays its WAL's
//! committed transactions through the ordinary heap and catalog code paths;
//! secondary indexes are then rebuilt by scanning the heaps.
//!
//! [`Database::checkpoint`] flushes all pages, durably writes generation
//! `G+1`'s snapshot and a fresh empty WAL under their *new* names, and only
//! then atomically swings `CURRENT` (write `CURRENT.tmp`, rename, fsync
//! dir). A crash anywhere before the swing leaves generation `G` — snapshot
//! *and* WAL — fully intact; a crash after it leaves generation `G+1` with
//! an empty log. There is no window in which a new snapshot can be paired
//! with the old WAL (which would double-apply on recovery). Old-generation
//! files are deleted only after the swing, as best-effort garbage
//! collection.
//!
//! In-memory databases ([`Database::in_memory`]) run the identical
//! machinery over volatile backends. [`Database::open_with_faults`] routes
//! every page and WAL I/O op through a [`crate::fault::FaultInjector`],
//! which is how the crash-torture suite exercises all of the above.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use crate::btree::BTreeIndex;
use crate::buffer::BufferPool;
use crate::catalog::{Catalog, IndexId, TableId};
use crate::disk::{sync_dir, FileStore, MemStore, PageStore};
use crate::encoding::{decode_row, encode_row};
use crate::error::{DbError, DbResult};
use crate::exec::{execute, ExecContext, Plan, ResultSet};
use crate::fault::{jitter_salt, retry_transient_with, FaultInjector, FaultStore, RetryPolicy};
use crate::heap::TableHeap;
use crate::row::{Row, RowId};
use crate::schema::Schema;
use crate::snapshot::{SnapshotReader, VersionStore, VersionStoreConfig};
use crate::sql::ast::Statement;
use crate::sql::{bind_delete, bind_insert, bind_select, bind_update, parse};
use crate::txn::{TxnManager, UndoOp};
use crate::value::Value;
use crate::wal::{Wal, WalRecord};

/// A relational database instance.
pub struct Database {
    pool: BufferPool,
    catalog: Catalog,
    indexes: HashMap<IndexId, BTreeIndex>,
    wal: Wal,
    txn: TxnManager,
    dir: Option<PathBuf>,
    /// Live checkpoint generation (what `CURRENT` points at).
    generation: u64,
    /// Failpoints threaded through every page/WAL op when fault-injecting.
    faults: Option<FaultInjector>,
    /// Bounded-retry policy for transient faults on the durable write path.
    retry: RetryPolicy,
    /// Whether retry backoffs may sleep inline. [`SharedDatabase`] turns
    /// this off so no thread sleeps while holding its mutex; the backoff
    /// then happens at that layer, outside the lock.
    sleep_on_retry: bool,
    /// The version-visibility index serving snapshot readers, attached by
    /// the first [`Database::begin_snapshot`] and fed at every commit
    /// boundary thereafter.
    versions: Option<VersionStore>,
    /// Retention tuning applied when the version store is created.
    snapshot_config: VersionStoreConfig,
}

/// Path of the `CURRENT` generation pointer file.
pub fn current_path(dir: &Path) -> PathBuf {
    dir.join("CURRENT")
}

/// Path of generation `generation`'s page snapshot.
pub fn pages_snap_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("pages.{generation}.snap"))
}

/// Path of generation `generation`'s catalog snapshot.
pub fn catalog_snap_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("catalog.{generation}.snap"))
}

/// Path of generation `generation`'s write-ahead log.
pub fn wal_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("wal.{generation}.log"))
}

/// Read the live generation from `CURRENT` (0 when the file is absent —
/// a freshly created database).
pub fn read_current(dir: &Path) -> DbResult<u64> {
    let path = current_path(dir);
    if !path.exists() {
        return Ok(0);
    }
    let text = std::fs::read_to_string(&path)?;
    text.trim()
        .parse::<u64>()
        .map_err(|_| DbError::Corruption(format!("CURRENT holds {:?}, not a generation", text)))
}

/// Fsync an already-written file by path.
fn fsync_file(path: &Path) -> DbResult<()> {
    std::fs::File::open(path)?.sync_all()?;
    Ok(())
}

/// Atomically point `CURRENT` at `generation`: write `CURRENT.tmp`, fsync
/// it, rename over `CURRENT`, fsync the directory.
fn publish_current(dir: &Path, generation: u64) -> DbResult<()> {
    let tmp = dir.join("CURRENT.tmp");
    {
        let mut f = std::fs::File::create(&tmp)?;
        use std::io::Write as _;
        f.write_all(generation.to_string().as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, current_path(dir))?;
    sync_dir(current_path(dir))
}

/// What a non-query statement did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOutcome {
    /// Rows inserted, updated, or deleted (0 for DDL and txn control).
    pub rows_affected: usize,
}

impl Database {
    /// A volatile database: same engine, memory-backed pages and WAL.
    pub fn in_memory() -> Database {
        Database {
            pool: BufferPool::new(Box::new(MemStore::new()), BufferPool::DEFAULT_CAPACITY),
            catalog: Catalog::new(),
            indexes: HashMap::new(),
            wal: Wal::in_memory(),
            txn: TxnManager::new(),
            dir: None,
            generation: 0,
            faults: None,
            retry: RetryPolicy::none(),
            sleep_on_retry: true,
            versions: None,
            snapshot_config: VersionStoreConfig::default(),
        }
    }

    /// Open (creating if necessary) a durable database in `dir`, running
    /// crash recovery: restore the last checkpoint snapshot, then replay the
    /// WAL's committed transactions.
    pub fn open(dir: impl AsRef<Path>) -> DbResult<Database> {
        Database::open_with_faults(dir, None)
    }

    /// [`Database::open`] with every page and WAL I/O op routed through
    /// `faults`' failpoints (including the recovery reads this open itself
    /// performs). The injector's op counter therefore indexes a
    /// deterministic stream across the whole database lifetime.
    pub fn open_with_faults(
        dir: impl AsRef<Path>,
        faults: Option<FaultInjector>,
    ) -> DbResult<Database> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let generation = read_current(&dir)?;
        let pages_path = dir.join("pages.db");
        let snap_path = pages_snap_path(&dir, generation);
        let catalog_path = catalog_snap_path(&dir, generation);

        // Working file starts as a copy of the snapshot (or empty).
        if snap_path.exists() {
            std::fs::copy(&snap_path, &pages_path)?;
        } else {
            let _ = std::fs::remove_file(&pages_path);
        }
        let catalog = if catalog_path.exists() {
            Catalog::decode(&std::fs::read(&catalog_path)?)?
        } else {
            Catalog::new()
        };
        let store: Box<dyn PageStore> = match &faults {
            Some(injector) => Box::new(FaultStore::new(
                Box::new(FileStore::open(&pages_path)?),
                injector.clone(),
            )),
            None => Box::new(FileStore::open(&pages_path)?),
        };
        let mut db = Database {
            pool: BufferPool::new(store, BufferPool::DEFAULT_CAPACITY),
            catalog,
            indexes: HashMap::new(),
            wal: Wal::open_with(wal_path(&dir, generation), faults.clone())?,
            txn: TxnManager::new(),
            dir: Some(dir),
            generation,
            faults,
            retry: RetryPolicy::none(),
            sleep_on_retry: true,
            versions: None,
            snapshot_config: VersionStoreConfig::default(),
        };
        db.recover()?;
        db.rebuild_indexes()?;
        Ok(db)
    }

    /// Set the bounded-retry policy applied to transient faults on the
    /// durable path: WAL syncs, and every page read/write/sync through the
    /// buffer pool (all idempotent, so retrying is always safe).
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
        self.pool.set_retry_policy(retry);
    }

    /// Forbid sleeping inside retry loops (used under [`SharedDatabase`]'s
    /// mutex). Transient faults are still retried, back to back; real
    /// backoff is re-introduced by the caller outside its lock.
    pub fn defer_retry_sleeps(&mut self) {
        self.sleep_on_retry = false;
        self.pool.defer_retry_sleeps();
    }

    /// Tune snapshot history retention. Takes effect when the version
    /// store is created (the first [`Database::begin_snapshot`]).
    pub fn set_snapshot_config(&mut self, config: VersionStoreConfig) {
        self.snapshot_config = config;
    }

    /// Open a read-only snapshot of the database at the current commit
    /// boundary. The returned reader holds no lock: it resolves every read
    /// against the version-visibility index ([`crate::snapshot`]), so it
    /// can be moved to another thread and scanned while this database
    /// keeps committing (via [`SharedDatabase::begin_snapshot`]).
    pub fn begin_snapshot(&mut self) -> DbResult<SnapshotReader> {
        let store = self.ensure_snapshots()?;
        SnapshotReader::new(store, self.wal.end_lsn())
    }

    /// The version store, if snapshots have been enabled (diagnostics).
    pub fn version_store(&self) -> Option<&VersionStore> {
        self.versions.as_ref()
    }

    /// Attach (once) the version store, seeding it with every live page
    /// and the catalog at the current boundary. Until this runs, the
    /// write path pays nothing for snapshot support.
    fn ensure_snapshots(&mut self) -> DbResult<VersionStore> {
        if let Some(store) = &self.versions {
            return Ok(store.clone());
        }
        if self.txn.in_txn() {
            // The pool may hold uncommitted pages of the open transaction;
            // seeding now would publish them as committed state.
            return Err(DbError::Txn(
                "cannot open the first snapshot inside a transaction".into(),
            ));
        }
        let base = self.wal.end_lsn();
        let store = VersionStore::new(base, self.snapshot_config, self.faults.clone());
        for page_id in 0..self.pool.num_pages() {
            let page = self.pool.page(page_id)?;
            store.publish_page(page_id, base, page.as_bytes())?;
        }
        store.publish_catalog(base, self.catalog.clone());
        self.pool.track_mutations();
        // Stash only after a complete seed: a failed seed leaves no store
        // attached, so a retried `begin_snapshot` starts clean.
        self.versions = Some(store.clone());
        Ok(store)
    }

    /// The live checkpoint generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Apply the WAL's committed transactions on top of the snapshot state.
    fn recover(&mut self) -> DbResult<()> {
        let records = self.wal.replay()?;
        // Pass 1: which transactions committed?
        let committed: std::collections::HashSet<u64> = records
            .iter()
            .filter_map(|r| match r {
                WalRecord::Commit { txn } => Some(*txn),
                _ => None,
            })
            .collect();
        // Pass 2: apply DDL and committed DML in log order. Row ids logged
        // at runtime may land elsewhere on replay; `remap` tracks them.
        let mut remap: HashMap<(u32, RowId), RowId> = HashMap::new();
        for record in records {
            match record {
                WalRecord::CreateTable { name, schema } => {
                    let heap = TableHeap::create(&mut self.pool)?;
                    self.catalog.create_table(name, schema, heap)?;
                }
                WalRecord::CreateIndex {
                    name,
                    table,
                    column,
                } => {
                    let id = self.catalog.require_table(&table)?.id;
                    self.catalog.create_index(name, id, column as usize)?;
                }
                WalRecord::DropTable { name } => {
                    let meta = self.catalog.drop_table(&name)?;
                    let dropped: Vec<IndexId> =
                        self.catalog.indexes_for(meta.id).map(|i| i.id).collect();
                    for id in dropped {
                        self.indexes.remove(&id);
                    }
                }
                WalRecord::DropIndex { name } => {
                    let meta = self.catalog.drop_index(&name)?;
                    self.indexes.remove(&meta.id);
                }
                WalRecord::Insert {
                    txn,
                    table,
                    rid,
                    bytes,
                } if committed.contains(&txn) => {
                    let actual = self.heap_insert_raw(TableId(table), &bytes)?;
                    remap.insert((table, rid), actual);
                }
                WalRecord::Delete { txn, table, rid } if committed.contains(&txn) => {
                    let actual = remap.get(&(table, rid)).copied().unwrap_or(rid);
                    self.heap_delete_raw(TableId(table), actual)?;
                }
                WalRecord::Update {
                    txn,
                    table,
                    rid,
                    bytes,
                } if committed.contains(&txn) => {
                    let actual = remap.get(&(table, rid)).copied().unwrap_or(rid);
                    let new_rid = self.heap_update_raw(TableId(table), actual, &bytes)?;
                    remap.insert((table, rid), new_rid);
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Rebuild every secondary index by scanning its table's heap.
    fn rebuild_indexes(&mut self) -> DbResult<()> {
        self.indexes.clear();
        let index_list: Vec<_> = self.catalog.indexes().to_vec();
        for meta in index_list {
            let mut btree = BTreeIndex::new();
            let table = self
                .catalog
                .table_by_id(meta.table)
                .ok_or_else(|| DbError::Catalog("index references dropped table".into()))?;
            let mut cursor = table.heap.cursor();
            while let Some((rid, bytes)) = cursor.next(&mut self.pool)? {
                let row = decode_row(&bytes)?;
                let key = row
                    .get(meta.column)
                    .cloned()
                    .ok_or_else(|| DbError::Corruption("row narrower than index column".into()))?;
                btree.insert(key, rid);
            }
            self.indexes.insert(meta.id, btree);
        }
        Ok(())
    }

    /// Flush pages and publish the next checkpoint generation.
    ///
    /// The snapshot and a fresh empty WAL are fully written under
    /// generation `G+1`'s names *before* `CURRENT` is atomically swung, so
    /// a crash at any injectable failpoint leaves either generation `G`
    /// (snapshot + WAL intact) or generation `G+1` (snapshot + empty WAL)
    /// — never a new snapshot paired with the old log.
    pub fn checkpoint(&mut self) -> DbResult<()> {
        let retry = self.retry;
        let sleep = self.sleep_on_retry;
        self.pool.flush_all()?; // per-op transient retry inside the pool
        let Some(dir) = self.dir.clone() else {
            return self.wal.truncate(); // truncate preserves the LSN clock
        };
        let next = self.generation + 1;
        // 1. Write generation G+1's snapshot durably under its new names.
        //    (`copy` + explicit fsync: rename-based publish is unnecessary
        //    because nothing reads these names until CURRENT says so.)
        std::fs::copy(dir.join("pages.db"), pages_snap_path(&dir, next))?;
        fsync_file(&pages_snap_path(&dir, next))?;
        std::fs::write(catalog_snap_path(&dir, next), self.catalog.encode())?;
        fsync_file(&catalog_snap_path(&dir, next))?;
        // 2. Create G+1's empty WAL; truncate defensively in case a crashed
        //    earlier checkpoint attempt left bytes under this name.
        let mut new_wal = Wal::open_with(wal_path(&dir, next), self.faults.clone())?;
        retry_transient_with(retry, sleep, || new_wal.truncate())?;
        sync_dir(wal_path(&dir, next))?;
        // 3. Atomically swing CURRENT. This is the commit point.
        publish_current(&dir, next)?;
        // 4. Generation G is now garbage; delete best-effort.
        new_wal.inherit_lsn(self.wal.end_lsn());
        self.wal = new_wal;
        let prev = self.generation;
        self.generation = next;
        let _ = std::fs::remove_file(pages_snap_path(&dir, prev));
        let _ = std::fs::remove_file(catalog_snap_path(&dir, prev));
        let _ = std::fs::remove_file(wal_path(&dir, prev));
        Ok(())
    }

    // ------------------------------------------------------------------
    // SQL entry points
    // ------------------------------------------------------------------

    /// Run a statement. `SELECT`s are allowed (their rows are counted and
    /// discarded); use [`Database::query`] to get results back.
    pub fn execute(&mut self, sql: &str) -> DbResult<ExecOutcome> {
        match parse(sql)? {
            Statement::Select(sel) => {
                let plan = bind_select(&sel, &self.catalog)?;
                let rs = self.run_plan(&plan)?;
                Ok(ExecOutcome {
                    rows_affected: rs.len(),
                })
            }
            Statement::CreateTable { name, columns } => {
                let schema = Schema::new(
                    columns
                        .into_iter()
                        .map(|c| crate::schema::Column {
                            name: c.name,
                            dtype: c.dtype,
                            nullable: c.nullable,
                        })
                        .collect(),
                )?;
                self.create_table(&name, schema)?;
                Ok(ExecOutcome { rows_affected: 0 })
            }
            Statement::CreateIndex {
                name,
                table,
                column,
            } => {
                self.create_index(&name, &table, &column)?;
                Ok(ExecOutcome { rows_affected: 0 })
            }
            Statement::DropTable { name } => {
                self.drop_table(&name)?;
                Ok(ExecOutcome { rows_affected: 0 })
            }
            Statement::DropIndex { name } => {
                self.drop_index(&name)?;
                Ok(ExecOutcome { rows_affected: 0 })
            }
            Statement::Insert {
                table,
                columns,
                rows,
            } => {
                let bound = bind_insert(&table, columns.as_deref(), &rows, &self.catalog)?;
                let n = bound.rows.len();
                self.with_statement_txn(|db, txn_id| {
                    for row in &bound.rows {
                        db.do_insert(txn_id, bound.table, row)?;
                    }
                    Ok(())
                })?;
                Ok(ExecOutcome { rows_affected: n })
            }
            Statement::Update {
                table,
                sets,
                predicate,
            } => {
                let bound = bind_update(&table, &sets, predicate.as_ref(), &self.catalog)?;
                let targets = self.matching_rows(bound.table, bound.predicate.as_ref())?;
                let meta = self
                    .catalog
                    .table_by_id(bound.table)
                    .expect("bound table exists");
                let schema = meta.schema.clone();
                // Compute all replacement rows up front so a mid-statement
                // type error cannot leave a half-applied autocommit UPDATE.
                let mut planned = Vec::with_capacity(targets.len());
                for (rid, row) in targets {
                    let mut new_row = row.clone();
                    for (idx, expr) in &bound.sets {
                        new_row.values[*idx] = expr.eval(&row)?;
                    }
                    planned.push((rid, schema.check_row(new_row)?));
                }
                let n = planned.len();
                self.with_statement_txn(|db, txn_id| {
                    for (rid, new_row) in &planned {
                        db.do_update(txn_id, bound.table, *rid, new_row)?;
                    }
                    Ok(())
                })?;
                Ok(ExecOutcome { rows_affected: n })
            }
            Statement::Delete { table, predicate } => {
                let bound = bind_delete(&table, predicate.as_ref(), &self.catalog)?;
                let targets = self.matching_rows(bound.table, bound.predicate.as_ref())?;
                let n = targets.len();
                self.with_statement_txn(|db, txn_id| {
                    for (rid, _) in &targets {
                        db.do_delete(txn_id, bound.table, *rid)?;
                    }
                    Ok(())
                })?;
                Ok(ExecOutcome { rows_affected: n })
            }
            Statement::Begin => {
                let id = self.txn.begin()?;
                self.wal.append(&WalRecord::Begin { txn: id });
                Ok(ExecOutcome { rows_affected: 0 })
            }
            Statement::Commit => self.commit().map(|_| ExecOutcome { rows_affected: 0 }),
            Statement::Rollback => self.rollback().map(|_| ExecOutcome { rows_affected: 0 }),
        }
    }

    /// Run a `SELECT` and return its rows.
    pub fn query(&mut self, sql: &str) -> DbResult<ResultSet> {
        match parse(sql)? {
            Statement::Select(sel) => {
                let plan = bind_select(&sel, &self.catalog)?;
                self.run_plan(&plan)
            }
            other => Err(DbError::SqlBind(format!(
                "query() expects SELECT, got {other:?}"
            ))),
        }
    }

    /// Execute an already-bound plan (used by the privacy layer, which
    /// builds plans programmatically).
    pub fn run_plan(&mut self, plan: &Plan) -> DbResult<ResultSet> {
        let mut ctx = ExecContext {
            catalog: &self.catalog,
            pool: &mut self.pool,
            indexes: &self.indexes,
        };
        execute(plan, &mut ctx)
    }

    // ------------------------------------------------------------------
    // Typed API (no SQL) — what the privacy layer builds on
    // ------------------------------------------------------------------

    /// Create a table, returning its id.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> DbResult<TableId> {
        let heap = TableHeap::create(&mut self.pool)?;
        let id = self.catalog.create_table(name, schema.clone(), heap)?;
        self.wal.append(&WalRecord::CreateTable {
            name: name.to_string(),
            schema,
        });
        self.sync_wal()?;
        Ok(id)
    }

    /// Create a single-column index (named column), building it from
    /// existing rows.
    pub fn create_index(&mut self, name: &str, table: &str, column: &str) -> DbResult<IndexId> {
        let meta = self.catalog.require_table(table)?;
        let table_id = meta.id;
        let col_idx = meta.schema.require(column)?;
        let id = self.catalog.create_index(name, table_id, col_idx)?;
        // Build from current contents.
        let heap = self
            .catalog
            .table_by_id(table_id)
            .expect("just looked up")
            .heap;
        let mut btree = BTreeIndex::new();
        let mut cursor = heap.cursor();
        while let Some((rid, bytes)) = cursor.next(&mut self.pool)? {
            let row = decode_row(&bytes)?;
            btree.insert(row.values[col_idx].clone(), rid);
        }
        self.indexes.insert(id, btree);
        self.wal.append(&WalRecord::CreateIndex {
            name: name.to_string(),
            table: table.to_string(),
            column: col_idx as u32,
        });
        self.sync_wal()?;
        Ok(id)
    }

    /// Drop a table and its indexes. (Heap pages are not reclaimed; space
    /// reuse across drops is future work, as in many small engines.)
    pub fn drop_table(&mut self, name: &str) -> DbResult<()> {
        let meta = self.catalog.drop_table(name)?;
        let dropped: Vec<IndexId> = self.catalog.indexes_for(meta.id).map(|i| i.id).collect();
        for id in dropped {
            self.indexes.remove(&id);
        }
        self.wal.append(&WalRecord::DropTable {
            name: name.to_string(),
        });
        self.sync_wal()
    }

    /// Drop an index by name.
    pub fn drop_index(&mut self, name: &str) -> DbResult<()> {
        let meta = self.catalog.drop_index(name)?;
        self.indexes.remove(&meta.id);
        self.wal.append(&WalRecord::DropIndex {
            name: name.to_string(),
        });
        self.sync_wal()
    }

    /// Insert a row (schema-checked), returning its address.
    pub fn insert(&mut self, table: &str, row: Row) -> DbResult<RowId> {
        let meta = self.catalog.require_table(table)?;
        let table_id = meta.id;
        let row = meta.schema.check_row(row)?;
        let mut rid = RowId::new(0, 0);
        self.with_statement_txn(|db, txn_id| {
            rid = db.do_insert(txn_id, table_id, &row)?;
            Ok(())
        })?;
        Ok(rid)
    }

    /// Fetch one row by address.
    pub fn get(&mut self, table: &str, rid: RowId) -> DbResult<Row> {
        let heap = self.catalog.require_table(table)?.heap;
        let bytes = heap.get(&mut self.pool, rid)?;
        decode_row(&bytes)
    }

    /// Update one row by address (schema-checked). Returns the row's new
    /// address (usually unchanged).
    pub fn update(&mut self, table: &str, rid: RowId, row: Row) -> DbResult<RowId> {
        let meta = self.catalog.require_table(table)?;
        let table_id = meta.id;
        let row = meta.schema.check_row(row)?;
        let mut out = rid;
        self.with_statement_txn(|db, txn_id| {
            out = db.do_update(txn_id, table_id, rid, &row)?;
            Ok(())
        })?;
        Ok(out)
    }

    /// Delete one row by address.
    pub fn delete(&mut self, table: &str, rid: RowId) -> DbResult<()> {
        let table_id = self.catalog.require_table(table)?.id;
        self.with_statement_txn(|db, txn_id| db.do_delete(txn_id, table_id, rid))
    }

    /// All `(address, row)` pairs of a table, in heap order.
    pub fn scan(&mut self, table: &str) -> DbResult<Vec<(RowId, Row)>> {
        let heap = self.catalog.require_table(table)?.heap;
        let mut cursor = heap.cursor();
        let mut out = Vec::new();
        while let Some((rid, bytes)) = cursor.next(&mut self.pool)? {
            out.push((rid, decode_row(&bytes)?));
        }
        Ok(out)
    }

    /// The schema of a table.
    pub fn schema(&self, table: &str) -> DbResult<&Schema> {
        Ok(&self.catalog.require_table(table)?.schema)
    }

    /// The catalog (read-only).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Buffer pool statistics (for benchmarks).
    pub fn pool_stats(&self) -> crate::buffer::PoolStats {
        self.pool.stats()
    }

    /// Rewrite a table into fresh pages, dropping tombstones and dead
    /// space, and rebuild its indexes. Row ids change; the old page chain
    /// is abandoned (page-level free-space reuse across tables is future
    /// work, as in many small engines).
    ///
    /// Not allowed inside an explicit transaction: vacuum moves every row,
    /// which cannot be represented in the undo log.
    pub fn vacuum(&mut self, table: &str) -> DbResult<usize> {
        if self.txn.in_txn() {
            return Err(DbError::Txn("VACUUM inside a transaction".into()));
        }
        let meta = self.catalog.require_table(table)?;
        let table_id = meta.id;
        let old_heap = meta.heap;
        // Copy all live rows out, then rewrite into a fresh chain.
        let mut cursor = old_heap.cursor();
        let mut rows: Vec<Vec<u8>> = Vec::new();
        while let Some((_, bytes)) = cursor.next(&mut self.pool)? {
            rows.push(bytes);
        }
        let mut new_heap = TableHeap::create(&mut self.pool)?;
        let txn_id = self.txn.autocommit_id();
        self.wal.append(&WalRecord::Begin { txn: txn_id });
        // Log as delete-all + reinsert: replay reproduces the rewrite.
        let mut old_cursor = old_heap.cursor();
        while let Some((rid, _)) = old_cursor.next(&mut self.pool)? {
            self.wal.append(&WalRecord::Delete {
                txn: txn_id,
                table: table_id.0,
                rid,
            });
        }
        let n = rows.len();
        for bytes in rows {
            let rid = new_heap.insert(&mut self.pool, &bytes)?;
            self.wal.append(&WalRecord::Insert {
                txn: txn_id,
                table: table_id.0,
                rid,
                bytes,
            });
        }
        // The heap switch itself is not WAL-logged: on replay the deletes
        // clear the old rows and the inserts (which carry full row images)
        // land in whatever chain is then current — equivalent contents,
        // possibly different layout, which is all vacuum promises.
        self.catalog
            .table_by_id_mut(table_id)
            .expect("looked up above")
            .heap = new_heap;
        self.wal.append(&WalRecord::Commit { txn: txn_id });
        self.sync_wal()?;
        self.rebuild_indexes_for(table_id)?;
        Ok(n)
    }

    fn rebuild_indexes_for(&mut self, table: TableId) -> DbResult<()> {
        let metas: Vec<_> = self.catalog.indexes_for(table).cloned().collect();
        let heap = self
            .catalog
            .table_by_id(table)
            .ok_or_else(|| DbError::Catalog("unknown table id".into()))?
            .heap;
        for meta in metas {
            let mut btree = BTreeIndex::new();
            let mut cursor = heap.cursor();
            while let Some((rid, bytes)) = cursor.next(&mut self.pool)? {
                let row = decode_row(&bytes)?;
                btree.insert(row.values[meta.column].clone(), rid);
            }
            self.indexes.insert(meta.id, btree);
        }
        Ok(())
    }

    /// Begin an explicit transaction.
    pub fn begin(&mut self) -> DbResult<()> {
        let id = self.txn.begin()?;
        self.wal.append(&WalRecord::Begin { txn: id });
        Ok(())
    }

    /// Commit the open transaction.
    pub fn commit(&mut self) -> DbResult<()> {
        let id = self.txn.take_commit()?;
        self.wal.append(&WalRecord::Commit { txn: id });
        self.sync_wal()
    }

    /// Roll back the open transaction, undoing its mutations.
    pub fn rollback(&mut self) -> DbResult<()> {
        let (id, undo) = self.txn.take_rollback()?;
        for op in undo {
            self.apply_undo(op)?;
        }
        self.wal.append(&WalRecord::Abort { txn: id });
        self.sync_wal()
    }

    /// Whether an explicit transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.txn.in_txn()
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    /// Durably sync the WAL, retrying transient faults per the retry
    /// policy. Safe to retry: on a transient failure [`Wal::sync`] retains
    /// its pending buffer, so the retried sync persists the complete batch
    /// exactly once. A successful sync outside an open transaction is a
    /// commit boundary, mirrored into the version store for snapshot
    /// readers.
    fn sync_wal(&mut self) -> DbResult<()> {
        let retry = self.retry;
        let sleep = self.sleep_on_retry;
        retry_transient_with(retry, sleep, || self.wal.sync())?;
        self.publish_versions();
        Ok(())
    }

    /// Mirror the just-synced commit boundary into the version store: the
    /// pages dirtied since the previous boundary, plus the catalog, become
    /// the committed state at the WAL's new end LSN, and unreachable
    /// history is pruned.
    ///
    /// Inside an open explicit transaction this is a no-op — mid-txn syncs
    /// (e.g. DDL) must not expose uncommitted pages to readers; the whole
    /// batch is published when COMMIT syncs. Publish failures (an injected
    /// version fault, or a page fault-in error) wedge the store — every
    /// snapshot read afterwards fails loudly — but never fail the writer's
    /// own commit, which is already durable by the time we get here.
    fn publish_versions(&mut self) {
        let Some(store) = self.versions.clone() else {
            return;
        };
        if self.txn.in_txn() {
            return;
        }
        let lsn = self.wal.end_lsn();
        match self.pool.publish_batch(&store, lsn) {
            Ok(()) => {
                store.publish_catalog(lsn, self.catalog.clone());
                store.prune();
            }
            Err(e) => store.wedge(&e),
        }
    }

    /// Run `body` under the open transaction if there is one, else under a
    /// fresh autocommit transaction (Begin/Commit logged around it, synced).
    fn with_statement_txn(
        &mut self,
        body: impl FnOnce(&mut Database, u64) -> DbResult<()>,
    ) -> DbResult<()> {
        if self.txn.in_txn() {
            let id = self.txn.active().expect("checked").id;
            body(self, id)
        } else {
            let id = self.txn.autocommit_id();
            self.wal.append(&WalRecord::Begin { txn: id });
            body(self, id)?;
            self.wal.append(&WalRecord::Commit { txn: id });
            self.sync_wal()
        }
    }

    fn matching_rows(
        &mut self,
        table: TableId,
        predicate: Option<&crate::expr::Expr>,
    ) -> DbResult<Vec<(RowId, Row)>> {
        let heap = self
            .catalog
            .table_by_id(table)
            .ok_or_else(|| DbError::Catalog("unknown table id".into()))?
            .heap;
        let mut cursor = heap.cursor();
        let mut out = Vec::new();
        while let Some((rid, bytes)) = cursor.next(&mut self.pool)? {
            let row = decode_row(&bytes)?;
            let keep = match predicate {
                Some(p) => p.matches(&row)?,
                None => true,
            };
            if keep {
                out.push((rid, row));
            }
        }
        Ok(out)
    }

    fn do_insert(&mut self, txn_id: u64, table: TableId, row: &Row) -> DbResult<RowId> {
        let bytes = encode_row(row);
        let rid = self.heap_insert_bytes(table, &bytes)?;
        self.index_add(table, row, rid);
        self.wal.append(&WalRecord::Insert {
            txn: txn_id,
            table: table.0,
            rid,
            bytes,
        });
        self.txn.record(UndoOp::Insert {
            table: table.0,
            rid,
        });
        Ok(rid)
    }

    fn do_delete(&mut self, txn_id: u64, table: TableId, rid: RowId) -> DbResult<()> {
        let heap = self
            .catalog
            .table_by_id(table)
            .ok_or_else(|| DbError::Catalog("unknown table id".into()))?
            .heap;
        let old_bytes = heap.get(&mut self.pool, rid)?;
        let old_row = decode_row(&old_bytes)?;
        heap.delete(&mut self.pool, rid)?;
        self.index_remove(table, &old_row, rid);
        self.wal.append(&WalRecord::Delete {
            txn: txn_id,
            table: table.0,
            rid,
        });
        self.txn.record(UndoOp::Delete {
            table: table.0,
            old_bytes,
        });
        Ok(())
    }

    fn do_update(
        &mut self,
        txn_id: u64,
        table: TableId,
        rid: RowId,
        new_row: &Row,
    ) -> DbResult<RowId> {
        let heap = self
            .catalog
            .table_by_id(table)
            .ok_or_else(|| DbError::Catalog("unknown table id".into()))?
            .heap;
        let old_bytes = heap.get(&mut self.pool, rid)?;
        let old_row = decode_row(&old_bytes)?;
        let new_bytes = encode_row(new_row);
        let new_rid = self.heap_update_bytes(table, rid, &new_bytes)?;
        self.index_remove(table, &old_row, rid);
        self.index_add(table, new_row, new_rid);
        self.wal.append(&WalRecord::Update {
            txn: txn_id,
            table: table.0,
            rid,
            bytes: new_bytes,
        });
        self.txn.record(UndoOp::Update {
            table: table.0,
            current_rid: new_rid,
            old_bytes,
        });
        Ok(new_rid)
    }

    fn apply_undo(&mut self, op: UndoOp) -> DbResult<()> {
        match op {
            UndoOp::Insert { table, rid } => {
                let table = TableId(table);
                let heap = self
                    .catalog
                    .table_by_id(table)
                    .ok_or_else(|| DbError::Catalog("unknown table id".into()))?
                    .heap;
                let bytes = heap.get(&mut self.pool, rid)?;
                let row = decode_row(&bytes)?;
                heap.delete(&mut self.pool, rid)?;
                self.index_remove(table, &row, rid);
            }
            UndoOp::Delete { table, old_bytes } => {
                let table = TableId(table);
                let rid = self.heap_insert_bytes(table, &old_bytes)?;
                let row = decode_row(&old_bytes)?;
                self.index_add(table, &row, rid);
            }
            UndoOp::Update {
                table,
                current_rid,
                old_bytes,
            } => {
                let table = TableId(table);
                let heap = self
                    .catalog
                    .table_by_id(table)
                    .ok_or_else(|| DbError::Catalog("unknown table id".into()))?
                    .heap;
                let current_bytes = heap.get(&mut self.pool, current_rid)?;
                let current_row = decode_row(&current_bytes)?;
                let restored_rid = self.heap_update_bytes(table, current_rid, &old_bytes)?;
                self.index_remove(table, &current_row, current_rid);
                let old_row = decode_row(&old_bytes)?;
                self.index_add(table, &old_row, restored_rid);
            }
        }
        Ok(())
    }

    /// Heap insert that also persists the updated heap handle in the
    /// catalog (the tail page can change).
    fn heap_insert_bytes(&mut self, table: TableId, bytes: &[u8]) -> DbResult<RowId> {
        let meta = self
            .catalog
            .table_by_id(table)
            .ok_or_else(|| DbError::Catalog("unknown table id".into()))?;
        let mut heap = meta.heap;
        let rid = heap.insert(&mut self.pool, bytes)?;
        self.catalog
            .table_by_id_mut(table)
            .expect("just looked up")
            .heap = heap;
        Ok(rid)
    }

    fn heap_update_bytes(&mut self, table: TableId, rid: RowId, bytes: &[u8]) -> DbResult<RowId> {
        let meta = self
            .catalog
            .table_by_id(table)
            .ok_or_else(|| DbError::Catalog("unknown table id".into()))?;
        let mut heap = meta.heap;
        let new_rid = heap.update(&mut self.pool, rid, bytes)?;
        self.catalog
            .table_by_id_mut(table)
            .expect("just looked up")
            .heap = heap;
        Ok(new_rid)
    }

    // Raw (no WAL, no index) variants used during recovery; indexes are
    // rebuilt afterwards.
    fn heap_insert_raw(&mut self, table: TableId, bytes: &[u8]) -> DbResult<RowId> {
        self.heap_insert_bytes(table, bytes)
    }

    fn heap_delete_raw(&mut self, table: TableId, rid: RowId) -> DbResult<()> {
        let heap = self
            .catalog
            .table_by_id(table)
            .ok_or_else(|| DbError::Catalog("unknown table id".into()))?
            .heap;
        heap.delete(&mut self.pool, rid)?;
        Ok(())
    }

    fn heap_update_raw(&mut self, table: TableId, rid: RowId, bytes: &[u8]) -> DbResult<RowId> {
        self.heap_update_bytes(table, rid, bytes)
    }

    fn index_add(&mut self, table: TableId, row: &Row, rid: RowId) {
        for meta in self.catalog.indexes_for(table) {
            if let Some(btree) = self.indexes.get_mut(&meta.id) {
                // indexes_for borrows catalog immutably; indexes is a
                // separate field, so the split borrow is fine.
                btree.insert(row.values[meta.column].clone(), rid);
            }
        }
    }

    fn index_remove(&mut self, table: TableId, row: &Row, rid: RowId) {
        for meta in self.catalog.indexes_for(table) {
            if let Some(btree) = self.indexes.get_mut(&meta.id) {
                btree.remove(&row.values[meta.column], rid);
            }
        }
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.catalog.tables().len())
            .field("indexes", &self.indexes.len())
            .field("in_txn", &self.txn.in_txn())
            .field("durable", &self.dir.is_some())
            .finish()
    }
}

/// A thread-safe handle to a database: one writer at a time behind a
/// mutex, any number of lock-free snapshot readers beside it.
///
/// The engine itself is single-writer; [`SharedDatabase`] serialises
/// mutation with a [`parking_lot::Mutex`], which is the appropriate
/// concurrency story for an analytical audit workload (short exclusive
/// sections, no reader starvation). Reads that need a *consistent* view
/// under live writes should use [`SharedDatabase::begin_snapshot`]: the
/// returned [`SnapshotReader`] takes the lock only for the instant of
/// capture, after which its reads never contend with the writer.
///
/// ## Retry discipline
///
/// Wrapping a database defers all in-lock retry sleeps
/// ([`Database::defer_retry_sleeps`]): transient faults on the durable
/// path are still retried under the lock, but back to back, so one
/// thread's backoff never stalls every other thread for the full sleep.
/// Idempotent entry points ([`SharedDatabase::query`],
/// [`SharedDatabase::begin_snapshot`]) re-introduce the full-jitter
/// backoff *outside* the mutex. Statements ([`SharedDatabase::execute`])
/// are not retried wholesale — a partially applied autocommit write must
/// not run twice — so they rely on the in-lock per-op retries alone.
#[derive(Clone)]
pub struct SharedDatabase {
    inner: std::sync::Arc<parking_lot::Mutex<Database>>,
    /// Policy for this handle's own out-of-lock backoff (captured from
    /// the database at wrap time).
    retry: RetryPolicy,
}

impl SharedDatabase {
    /// Wrap a database for shared use.
    pub fn new(mut db: Database) -> SharedDatabase {
        let retry = db.retry;
        db.defer_retry_sleeps();
        SharedDatabase {
            inner: std::sync::Arc::new(parking_lot::Mutex::new(db)),
            retry,
        }
    }

    /// Run `f` with exclusive access to the database.
    pub fn with<R>(&self, f: impl FnOnce(&mut Database) -> R) -> R {
        f(&mut self.inner.lock())
    }

    /// Retry an idempotent operation with full-jitter backoff, sleeping
    /// *between* lock acquisitions — never while holding the mutex.
    fn retry_idempotent<R>(&self, mut f: impl FnMut(&mut Database) -> DbResult<R>) -> DbResult<R> {
        let salt = jitter_salt();
        let mut attempt = 0;
        loop {
            let result = self.with(&mut f);
            match result {
                Err(e) if e.is_transient() && attempt < self.retry.max_retries => {
                    std::thread::sleep(self.retry.jittered_backoff(attempt, salt));
                    attempt += 1;
                }
                other => return other,
            }
        }
    }

    /// Run a query under the lock. Queries are read-only (idempotent), so
    /// transient faults that survive the in-lock retries are retried here
    /// with jittered backoff outside the mutex.
    pub fn query(&self, sql: &str) -> DbResult<ResultSet> {
        self.retry_idempotent(|db| db.query(sql))
    }

    /// Convenience: run a statement under the lock. Not retried wholesale
    /// (see the type docs); per-op transient retries still apply inside.
    pub fn execute(&self, sql: &str) -> DbResult<ExecOutcome> {
        self.with(|db| db.execute(sql))
    }

    /// Capture a read-only snapshot of the current commit boundary. The
    /// lock is held only for the capture itself (plus, on the very first
    /// call, seeding the version store); every read through the returned
    /// [`SnapshotReader`] then proceeds without this lock, concurrently
    /// with writers. If the snapshot's history is later reclaimed, reads
    /// fail with [`DbError::SnapshotTooOld`] and the fix is to call this
    /// again for a fresh boundary.
    pub fn begin_snapshot(&self) -> DbResult<SnapshotReader> {
        self.retry_idempotent(|db| db.begin_snapshot())
    }
}

/// Convenience: run a query returning a single scalar value.
pub fn query_scalar(db: &mut Database, sql: &str) -> DbResult<Value> {
    let rs = db.query(sql)?;
    rs.scalar().cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;
    use crate::types::DataType;

    fn seeded() -> Database {
        let mut db = Database::in_memory();
        db.execute("CREATE TABLE people (id INT, name TEXT, age INT NULL)")
            .unwrap();
        db.execute(
            "INSERT INTO people VALUES (1, 'alice', 34), (2, 'bob', 28), \
             (3, 'carol', 41), (4, 'dan', NULL)",
        )
        .unwrap();
        db
    }

    #[test]
    fn end_to_end_select() {
        let mut db = seeded();
        let rs = db
            .query("SELECT name FROM people WHERE age > 30 ORDER BY age DESC")
            .unwrap();
        assert_eq!(rs.columns, vec!["name"]);
        let names: Vec<&str> = rs
            .rows
            .iter()
            .map(|r| r.values[0].as_text().unwrap())
            .collect();
        assert_eq!(names, vec!["carol", "alice"]);
    }

    #[test]
    fn aggregates_via_sql() {
        let mut db = seeded();
        let v = query_scalar(&mut db, "SELECT COUNT(*) FROM people").unwrap();
        assert_eq!(v, Value::Int(4));
        let rs = db
            .query("SELECT age, COUNT(*) AS n FROM people GROUP BY age")
            .unwrap();
        assert_eq!(rs.len(), 4); // NULL, 28, 34, 41
    }

    #[test]
    fn update_and_delete_via_sql() {
        let mut db = seeded();
        let out = db
            .execute("UPDATE people SET age = age + 1 WHERE age IS NOT NULL")
            .unwrap();
        assert_eq!(out.rows_affected, 3);
        let v = query_scalar(&mut db, "SELECT MAX(age) FROM people").unwrap();
        assert_eq!(v, Value::Int(42));
        let out = db.execute("DELETE FROM people WHERE age IS NULL").unwrap();
        assert_eq!(out.rows_affected, 1);
        let v = query_scalar(&mut db, "SELECT COUNT(*) FROM people").unwrap();
        assert_eq!(v, Value::Int(3));
    }

    #[test]
    fn failed_update_leaves_table_untouched() {
        let mut db = seeded();
        // Type error computed before any row is touched.
        let err = db.execute("UPDATE people SET age = name").unwrap_err();
        assert!(matches!(err, DbError::TypeMismatch { .. }), "{err}");
        let rs = db.query("SELECT * FROM people WHERE age = 34").unwrap();
        assert_eq!(rs.len(), 1);
    }

    #[test]
    fn index_is_used_and_maintained() {
        let mut db = seeded();
        db.execute("CREATE INDEX people_age ON people (age)")
            .unwrap();
        let rs = db.query("SELECT name FROM people WHERE age = 28").unwrap();
        assert_eq!(rs.len(), 1);
        // Mutations keep the index fresh.
        db.execute("UPDATE people SET age = 29 WHERE name = 'bob'")
            .unwrap();
        assert_eq!(
            db.query("SELECT name FROM people WHERE age = 28")
                .unwrap()
                .len(),
            0
        );
        assert_eq!(
            db.query("SELECT name FROM people WHERE age = 29")
                .unwrap()
                .len(),
            1
        );
        db.execute("DELETE FROM people WHERE age = 29").unwrap();
        assert_eq!(
            db.query("SELECT name FROM people WHERE age = 29")
                .unwrap()
                .len(),
            0
        );
    }

    #[test]
    fn typed_api_round_trip() {
        let mut db = Database::in_memory();
        let schema = SchemaBuilder::new()
            .column("k", DataType::Int)
            .column("v", DataType::Text)
            .build()
            .unwrap();
        db.create_table("kv", schema).unwrap();
        let rid = db
            .insert(
                "kv",
                Row::from_values([Value::Int(1), Value::Text("one".into())]),
            )
            .unwrap();
        assert_eq!(
            db.get("kv", rid).unwrap().values[1],
            Value::Text("one".into())
        );
        let rid2 = db
            .update(
                "kv",
                rid,
                Row::from_values([Value::Int(1), Value::Text("uno".into())]),
            )
            .unwrap();
        assert_eq!(
            db.get("kv", rid2).unwrap().values[1],
            Value::Text("uno".into())
        );
        db.delete("kv", rid2).unwrap();
        assert!(db.scan("kv").unwrap().is_empty());
    }

    #[test]
    fn transactions_commit_and_rollback() {
        let mut db = seeded();
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO people VALUES (5, 'eve', 52)")
            .unwrap();
        db.execute("DELETE FROM people WHERE name = 'alice'")
            .unwrap();
        db.execute("UPDATE people SET age = 100 WHERE name = 'bob'")
            .unwrap();
        assert!(db.in_transaction());
        db.execute("ROLLBACK").unwrap();
        assert!(!db.in_transaction());
        // Everything restored.
        assert_eq!(
            query_scalar(&mut db, "SELECT COUNT(*) FROM people").unwrap(),
            Value::Int(4)
        );
        assert_eq!(
            db.query("SELECT * FROM people WHERE name = 'alice'")
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            db.query("SELECT * FROM people WHERE age = 100")
                .unwrap()
                .len(),
            0
        );
        // And commit works.
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO people VALUES (5, 'eve', 52)")
            .unwrap();
        db.execute("COMMIT").unwrap();
        assert_eq!(
            query_scalar(&mut db, "SELECT COUNT(*) FROM people").unwrap(),
            Value::Int(5)
        );
    }

    #[test]
    fn rollback_restores_indexes_too() {
        let mut db = seeded();
        db.execute("CREATE INDEX people_age ON people (age)")
            .unwrap();
        db.execute("BEGIN").unwrap();
        db.execute("UPDATE people SET age = 99 WHERE name = 'alice'")
            .unwrap();
        db.execute("ROLLBACK").unwrap();
        assert_eq!(
            db.query("SELECT * FROM people WHERE age = 34")
                .unwrap()
                .len(),
            1
        );
        assert_eq!(
            db.query("SELECT * FROM people WHERE age = 99")
                .unwrap()
                .len(),
            0
        );
    }

    #[test]
    fn txn_errors() {
        let mut db = seeded();
        assert!(db.execute("COMMIT").is_err());
        assert!(db.execute("ROLLBACK").is_err());
        db.execute("BEGIN").unwrap();
        assert!(db.execute("BEGIN").is_err());
        db.execute("COMMIT").unwrap();
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "qpv-db-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_database_recovers_after_reopen() {
        let dir = temp_dir("recover");
        {
            let mut db = Database::open(&dir).unwrap();
            db.execute("CREATE TABLE t (id INT, v TEXT)").unwrap();
            db.execute("CREATE INDEX t_id ON t (id)").unwrap();
            db.execute("INSERT INTO t VALUES (1, 'one'), (2, 'two')")
                .unwrap();
            db.execute("UPDATE t SET v = 'TWO' WHERE id = 2").unwrap();
            db.execute("DELETE FROM t WHERE id = 1").unwrap();
            // No checkpoint: recovery must come from the WAL alone.
        }
        let mut db = Database::open(&dir).unwrap();
        let rs = db.query("SELECT id, v FROM t").unwrap();
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0].values[1], Value::Text("TWO".into()));
        // Index rebuilt and usable.
        assert_eq!(db.query("SELECT * FROM t WHERE id = 2").unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn uncommitted_transaction_is_not_recovered() {
        let dir = temp_dir("uncommitted");
        {
            let mut db = Database::open(&dir).unwrap();
            db.execute("CREATE TABLE t (id INT)").unwrap();
            db.execute("INSERT INTO t VALUES (1)").unwrap();
            db.execute("BEGIN").unwrap();
            db.execute("INSERT INTO t VALUES (2)").unwrap();
            // Simulated crash: drop without COMMIT. The WAL has the insert
            // but no Commit record. (Mid-txn appends are only made durable
            // by the eventual COMMIT's sync; flush them here to model the
            // worst case where they did reach disk.)
            db.wal.sync().unwrap();
        }
        let mut db = Database::open(&dir).unwrap();
        assert_eq!(
            query_scalar(&mut db, "SELECT COUNT(*) FROM t").unwrap(),
            Value::Int(1)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_then_more_writes_then_recover() {
        let dir = temp_dir("checkpoint");
        {
            let mut db = Database::open(&dir).unwrap();
            db.execute("CREATE TABLE t (id INT)").unwrap();
            db.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
            db.checkpoint().unwrap();
            assert!(db.wal.is_empty());
            db.execute("INSERT INTO t VALUES (4)").unwrap();
            db.execute("DELETE FROM t WHERE id = 1").unwrap();
        }
        let mut db = Database::open(&dir).unwrap();
        let rs = db.query("SELECT id FROM t ORDER BY id").unwrap();
        let ids: Vec<i64> = rs
            .rows
            .iter()
            .map(|r| r.values[0].as_int().unwrap())
            .collect();
        assert_eq!(ids, vec![2, 3, 4]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_is_idempotent_across_many_reopens() {
        let dir = temp_dir("idempotent");
        {
            let mut db = Database::open(&dir).unwrap();
            db.execute("CREATE TABLE t (id INT)").unwrap();
            db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        }
        for _ in 0..3 {
            let mut db = Database::open(&dir).unwrap();
            assert_eq!(
                query_scalar(&mut db, "SELECT COUNT(*) FROM t").unwrap(),
                Value::Int(2)
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drop_table_and_index_via_sql() {
        let mut db = seeded();
        db.execute("CREATE INDEX people_age ON people (age)")
            .unwrap();
        db.execute("DROP INDEX people_age").unwrap();
        db.execute("DROP TABLE people").unwrap();
        assert!(db.query("SELECT * FROM people").is_err());
    }

    #[test]
    fn shared_database_serialises_access() {
        let shared = SharedDatabase::new(seeded());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let shared = shared.clone();
                std::thread::spawn(move || {
                    shared
                        .execute(&format!(
                            "INSERT INTO people VALUES ({}, 'p{}', 20)",
                            10 + i,
                            i
                        ))
                        .unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let rs = shared.query("SELECT COUNT(*) FROM people").unwrap();
        assert_eq!(rs.rows[0].values[0], Value::Int(8));
    }

    #[test]
    fn snapshot_sees_its_boundary_while_writer_advances() {
        let shared = SharedDatabase::new(seeded());
        let snap = shared.begin_snapshot().unwrap();
        assert_eq!(snap.count("people").unwrap(), 4);
        shared
            .execute("INSERT INTO people VALUES (5, 'eve', 52)")
            .unwrap();
        shared.execute("DELETE FROM people WHERE id = 1").unwrap();
        // The old snapshot still reads its boundary; a fresh one sees the
        // writer's progress.
        assert_eq!(snap.count("people").unwrap(), 4);
        let names: Vec<String> = snap
            .scan("people")
            .unwrap()
            .into_iter()
            .map(|(_, r)| r.values[1].as_text().unwrap().to_string())
            .collect();
        assert!(names.contains(&"alice".to_string()));
        assert!(!names.contains(&"eve".to_string()));
        let fresh = shared.begin_snapshot().unwrap();
        assert_eq!(fresh.count("people").unwrap(), 4); // 4 - 1 + 1
        let fresh_names: Vec<String> = fresh
            .scan("people")
            .unwrap()
            .into_iter()
            .map(|(_, r)| r.values[1].as_text().unwrap().to_string())
            .collect();
        assert!(fresh_names.contains(&"eve".to_string()));
        assert!(!fresh_names.contains(&"alice".to_string()));
    }

    #[test]
    fn snapshot_ignores_uncommitted_transaction_state() {
        let mut db = seeded();
        // First snapshot cannot be opened mid-transaction (the pool holds
        // uncommitted pages the seed would capture).
        db.begin().unwrap();
        assert!(matches!(db.begin_snapshot(), Err(DbError::Txn(_))));
        db.rollback().unwrap();
        let snap = db.begin_snapshot().unwrap();
        assert_eq!(snap.count("people").unwrap(), 4);
        // Once attached, mid-transaction snapshots observe the last commit
        // boundary — never the open transaction's writes.
        db.begin().unwrap();
        db.execute("INSERT INTO people VALUES (6, 'mallory', 99)")
            .unwrap();
        let mid = db.begin_snapshot().unwrap();
        assert_eq!(mid.count("people").unwrap(), 4);
        db.commit().unwrap();
        assert_eq!(mid.count("people").unwrap(), 4);
        assert_eq!(db.begin_snapshot().unwrap().count("people").unwrap(), 5);
    }

    #[test]
    fn snapshot_survives_checkpoint_lsn_handoff() {
        let dir = temp_dir("snap-ckpt");
        let mut db = Database::open(&dir).unwrap();
        db.execute("CREATE TABLE t (id INT)").unwrap();
        db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        let snap = db.begin_snapshot().unwrap();
        let lsn_before = db.begin_snapshot().unwrap().lsn();
        db.checkpoint().unwrap();
        db.execute("INSERT INTO t VALUES (3)").unwrap();
        // The new generation's WAL inherited the LSN clock: boundaries
        // stay monotone, so the old snapshot still resolves and a new one
        // sees the post-checkpoint insert.
        assert!(db.begin_snapshot().unwrap().lsn() > lsn_before);
        assert_eq!(snap.count("t").unwrap(), 2);
        assert_eq!(db.begin_snapshot().unwrap().count("t").unwrap(), 3);
        drop(snap);
        drop(db);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn seeded_with_orders() -> Database {
        let mut db = seeded();
        db.execute("CREATE TABLE orders (order_id INT, person_id INT, amount INT)")
            .unwrap();
        db.execute(
            "INSERT INTO orders VALUES (100, 1, 30), (101, 1, 70), (102, 2, 15), (103, 9, 5)",
        )
        .unwrap();
        db
    }

    #[test]
    fn inner_join_matches_rows() {
        let mut db = seeded_with_orders();
        let rs = db
            .query(
                "SELECT p.name, o.amount FROM people p JOIN orders o \
                 ON p.id = o.person_id ORDER BY o.amount",
            )
            .unwrap();
        assert_eq!(rs.columns, vec!["name", "amount"]);
        let got: Vec<(String, i64)> = rs
            .rows
            .iter()
            .map(|r| {
                (
                    r.values[0].as_text().unwrap().to_string(),
                    r.values[1].as_int().unwrap(),
                )
            })
            .collect();
        // person 9 has no people row; dan has no orders.
        assert_eq!(
            got,
            vec![
                ("bob".to_string(), 15),
                ("alice".to_string(), 30),
                ("alice".to_string(), 70),
            ]
        );
    }

    #[test]
    fn join_star_qualifies_output_columns() {
        let mut db = seeded_with_orders();
        let rs = db
            .query("SELECT * FROM people p JOIN orders o ON p.id = o.person_id")
            .unwrap();
        assert!(rs.columns.contains(&"p.id".to_string()), "{:?}", rs.columns);
        assert!(rs.columns.contains(&"o.amount".to_string()));
        assert_eq!(rs.rows[0].arity(), 3 + 3);
    }

    #[test]
    fn join_with_where_group_by_and_aggregates() {
        let mut db = seeded_with_orders();
        let rs = db
            .query(
                "SELECT p.name, SUM(o.amount) AS total FROM people p \
                 JOIN orders o ON p.id = o.person_id \
                 WHERE o.amount > 10 GROUP BY p.name",
            )
            .unwrap();
        assert_eq!(rs.columns, vec!["name", "total"]);
        assert_eq!(rs.len(), 2); // alice, bob
        let alice = rs
            .rows
            .iter()
            .find(|r| r.values[0] == Value::Text("alice".into()))
            .unwrap();
        assert_eq!(alice.values[1], Value::Int(100));
    }

    #[test]
    fn non_equi_join_uses_nested_loop() {
        let mut db = seeded_with_orders();
        // Every (person, order) pair where the order is bigger than the id
        // — nonsense semantically, but exercises the nested-loop path.
        let rs = db
            .query(
                "SELECT p.id, o.order_id FROM people p JOIN orders o \
                 ON o.amount > p.id * 20",
            )
            .unwrap();
        assert!(!rs.is_empty());
        for row in &rs.rows {
            let _ = row;
        }
        // Cross-check one pair: person 1 (20) matches orders 30 and 70.
        let ones = rs
            .rows
            .iter()
            .filter(|r| r.values[0] == Value::Int(1))
            .count();
        assert_eq!(ones, 2);
    }

    #[test]
    fn three_way_join() {
        let mut db = seeded_with_orders();
        db.execute("CREATE TABLE refunds (order_ref INT, pct INT)")
            .unwrap();
        db.execute("INSERT INTO refunds VALUES (101, 50), (102, 100)")
            .unwrap();
        let rs = db
            .query(
                "SELECT p.name, r.pct FROM people p \
                 JOIN orders o ON p.id = o.person_id \
                 JOIN refunds r ON r.order_ref = o.order_id \
                 ORDER BY r.pct",
            )
            .unwrap();
        let got: Vec<(&str, i64)> = rs
            .rows
            .iter()
            .map(|r| {
                (
                    r.values[0].as_text().unwrap(),
                    r.values[1].as_int().unwrap(),
                )
            })
            .collect();
        assert_eq!(got, vec![("alice", 50), ("bob", 100)]);
    }

    #[test]
    fn join_errors_are_clear() {
        let mut db = seeded_with_orders();
        // Ambiguous unqualified column (both tables lack it → unknown; both
        // have `id`-ish names? people.id only, so use a genuinely ambiguous
        // setup):
        db.execute("CREATE TABLE people2 (id INT, name TEXT)")
            .unwrap();
        let err = db
            .query("SELECT id FROM people p JOIN people2 q ON p.id = q.id")
            .unwrap_err();
        assert!(err.to_string().contains("ambiguous"), "{err}");
        // Unknown alias.
        let err = db
            .query("SELECT z.id FROM people p JOIN orders o ON p.id = o.person_id")
            .unwrap_err();
        assert!(err.to_string().contains("alias"), "{err}");
        // Duplicate alias.
        let err = db
            .query("SELECT 1 FROM people p JOIN orders p ON 1 = 1")
            .unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
        // Self-join works with distinct aliases.
        let rs = db
            .query("SELECT a.name FROM people a JOIN people b ON a.id = b.id")
            .unwrap();
        assert_eq!(rs.len(), 4);
    }

    #[test]
    fn vacuum_compacts_and_preserves_contents() {
        let mut db = Database::in_memory();
        db.execute("CREATE TABLE t (id INT, pad TEXT)").unwrap();
        db.execute("CREATE INDEX t_id ON t (id)").unwrap();
        for chunk in 0..10 {
            let values: Vec<String> = (0..100)
                .map(|i| format!("({}, '{}')", chunk * 100 + i, "x".repeat(64)))
                .collect();
            db.execute(&format!("INSERT INTO t VALUES {}", values.join(",")))
                .unwrap();
        }
        // Delete 90% — the heap is now mostly tombstones.
        db.execute("DELETE FROM t WHERE id % 10 <> 0").unwrap();
        let pages_before = db.pool.num_pages();
        let survivors = db.query("SELECT id FROM t ORDER BY id").unwrap();
        assert_eq!(survivors.len(), 100);

        let n = db.vacuum("t").unwrap();
        assert_eq!(n, 100);
        // Contents identical.
        let after = db.query("SELECT id FROM t ORDER BY id").unwrap();
        assert_eq!(after, survivors);
        // Index still consistent (rebuilt over new row ids).
        let rs = db.query("SELECT COUNT(*) FROM t WHERE id = 500").unwrap();
        assert_eq!(rs.rows[0].values[0], Value::Int(1));
        // The new chain is much shorter than the old one (100 small rows
        // fit a handful of pages vs the old ~20-page chain).
        let meta = db.catalog.table("t").unwrap();
        let new_chain_len = {
            let mut len = 1u64;
            let mut page = meta.heap.first_page();
            while let Some(next) = db.pool.page(page).unwrap().next_page() {
                page = next;
                len += 1;
            }
            len
        };
        assert!(
            new_chain_len <= 5,
            "vacuumed chain is {new_chain_len} pages"
        );
        let _ = pages_before;
        // Vacuum in a transaction is rejected.
        db.execute("BEGIN").unwrap();
        assert!(db.vacuum("t").is_err());
        db.execute("ROLLBACK").unwrap();
    }

    #[test]
    fn vacuum_is_durable() {
        let dir = temp_dir("vacuum");
        {
            let mut db = Database::open(&dir).unwrap();
            db.execute("CREATE TABLE t (id INT)").unwrap();
            db.execute("INSERT INTO t VALUES (1), (2), (3), (4)")
                .unwrap();
            db.execute("DELETE FROM t WHERE id > 2").unwrap();
            db.vacuum("t").unwrap();
            db.execute("INSERT INTO t VALUES (9)").unwrap();
        }
        let mut db = Database::open(&dir).unwrap();
        let rs = db.query("SELECT id FROM t ORDER BY id").unwrap();
        let ids: Vec<i64> = rs
            .rows
            .iter()
            .map(|r| r.values[0].as_int().unwrap())
            .collect();
        assert_eq!(ids, vec![1, 2, 9]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn in_list_queries() {
        let mut db = seeded();
        let rs = db
            .query("SELECT name FROM people WHERE id IN (1, 3, 99) ORDER BY id")
            .unwrap();
        let names: Vec<&str> = rs
            .rows
            .iter()
            .map(|r| r.values[0].as_text().unwrap())
            .collect();
        assert_eq!(names, vec!["alice", "carol"]);
        // NOT IN with NULL semantics: `age NOT IN (28)` filters the NULL
        // age row (NULL <> 28 is NULL, filtered by WHERE).
        let rs = db
            .query("SELECT name FROM people WHERE age NOT IN (28)")
            .unwrap();
        assert_eq!(rs.len(), 2); // alice(34), carol(41); dan(NULL) excluded
                                 // IN over text.
        let rs = db
            .query("SELECT id FROM people WHERE name IN ('bob', 'dan')")
            .unwrap();
        assert_eq!(rs.len(), 2);
    }

    #[test]
    fn between_queries_and_index_bounds() {
        let mut db = seeded();
        db.execute("CREATE INDEX people_age ON people (age)")
            .unwrap();
        let rs = db
            .query("SELECT name FROM people WHERE age BETWEEN 28 AND 34")
            .unwrap();
        assert_eq!(rs.len(), 2);
        let rs = db
            .query("SELECT name FROM people WHERE age NOT BETWEEN 28 AND 34")
            .unwrap();
        assert_eq!(rs.len(), 1); // carol(41); dan's NULL filtered
                                 // The binder must turn BETWEEN over an indexed column into bounds.
        let Statement::Select(sel) =
            parse("SELECT * FROM people WHERE age BETWEEN 28 AND 34").unwrap()
        else {
            panic!()
        };
        let plan = bind_select(&sel, &db.catalog).unwrap();
        let Plan::Filter { input, .. } = plan else {
            panic!("expected residual filter");
        };
        assert!(matches!(*input, Plan::IndexScan { .. }), "{input:?}");
    }

    #[test]
    fn like_queries() {
        let mut db = seeded();
        let rs = db
            .query("SELECT name FROM people WHERE name LIKE 'c%'")
            .unwrap();
        assert_eq!(rs.rows[0].values[0], Value::Text("carol".into()));
        let rs = db
            .query("SELECT name FROM people WHERE name LIKE '%a%' AND name NOT LIKE 'd_n'")
            .unwrap();
        // alice, carol contain 'a'; dan matches d_n and is excluded.
        assert_eq!(rs.len(), 2);
        assert!(db.query("SELECT * FROM people WHERE age LIKE 'x'").is_err());
    }

    #[test]
    fn distinct_queries() {
        let mut db = seeded();
        db.execute("INSERT INTO people VALUES (5, 'alice', 34)")
            .unwrap();
        let all = db.query("SELECT name FROM people").unwrap();
        assert_eq!(all.len(), 5);
        let distinct = db.query("SELECT DISTINCT name FROM people").unwrap();
        assert_eq!(distinct.len(), 4);
        // First occurrence order is preserved.
        assert_eq!(distinct.rows[0].values[0], Value::Text("alice".into()));
        // Multi-column distinct keys on the whole row.
        let rs = db.query("SELECT DISTINCT name, age FROM people").unwrap();
        assert_eq!(rs.len(), 4);
        // DISTINCT with aggregates is rejected.
        assert!(db.query("SELECT DISTINCT COUNT(*) FROM people").is_err());
    }

    #[test]
    fn bulk_load_spans_many_pages() {
        let mut db = Database::in_memory();
        db.execute("CREATE TABLE big (id INT, payload TEXT)")
            .unwrap();
        for chunk in 0..20 {
            let values: Vec<String> = (0..50)
                .map(|i| format!("({}, '{}')", chunk * 50 + i, "x".repeat(100)))
                .collect();
            db.execute(&format!("INSERT INTO big VALUES {}", values.join(", ")))
                .unwrap();
        }
        assert_eq!(
            query_scalar(&mut db, "SELECT COUNT(*) FROM big").unwrap(),
            Value::Int(1000)
        );
        let rs = db
            .query("SELECT id FROM big WHERE id % 100 = 0 ORDER BY id")
            .unwrap();
        assert_eq!(rs.len(), 10);
    }
}
