//! Engine-wide error type.

use std::fmt;
use std::io;

/// Convenient alias for engine results.
pub type DbResult<T> = Result<T, DbError>;

/// Every way the engine can fail, from storage up through SQL.
#[derive(Debug)]
pub enum DbError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// On-disk or in-log bytes failed validation (bad magic, checksum,
    /// truncated record, impossible offsets).
    Corruption(String),
    /// A page has no room for the requested record.
    PageFull,
    /// A record reference pointed at a missing page or slot.
    RecordNotFound { page: u64, slot: u16 },
    /// Schema-level misuse: wrong arity, unknown column, bad column name.
    Schema(String),
    /// A value did not match the column's declared type.
    TypeMismatch { expected: String, found: String },
    /// Catalog-level misuse: duplicate or missing table/index.
    Catalog(String),
    /// SQL text failed to lex or parse.
    SqlParse(String),
    /// SQL referenced unknown tables/columns or was semantically invalid.
    SqlBind(String),
    /// Expression evaluation failed (type error, division by zero, ...).
    Eval(String),
    /// Transaction misuse (commit/abort without begin, nested begin).
    Txn(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Io(e) => write!(f, "io error: {e}"),
            DbError::Corruption(msg) => write!(f, "corruption: {msg}"),
            DbError::PageFull => f.write_str("page full"),
            DbError::RecordNotFound { page, slot } => {
                write!(f, "record not found: page {page} slot {slot}")
            }
            DbError::Schema(msg) => write!(f, "schema error: {msg}"),
            DbError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            DbError::Catalog(msg) => write!(f, "catalog error: {msg}"),
            DbError::SqlParse(msg) => write!(f, "sql parse error: {msg}"),
            DbError::SqlBind(msg) => write!(f, "sql bind error: {msg}"),
            DbError::Eval(msg) => write!(f, "evaluation error: {msg}"),
            DbError::Txn(msg) => write!(f, "transaction error: {msg}"),
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DbError {
    fn from(e: io::Error) -> DbError {
        DbError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DbError::RecordNotFound { page: 3, slot: 7 };
        assert_eq!(e.to_string(), "record not found: page 3 slot 7");
        let e = DbError::TypeMismatch {
            expected: "INT".into(),
            found: "TEXT".into(),
        };
        assert!(e.to_string().contains("expected INT"));
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let io = io::Error::new(io::ErrorKind::NotFound, "gone");
        let e: DbError = io.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
