//! Engine-wide error type.

use std::fmt;
use std::io;

/// Convenient alias for engine results.
pub type DbResult<T> = Result<T, DbError>;

/// Every way the engine can fail, from storage up through SQL.
///
/// ## Error taxonomy: transient vs permanent
///
/// [`DbError::Transient`] marks faults that are expected to succeed on a
/// bounded retry (a spurious `EIO`, a sync the medium reported as failed
/// without losing state). Everything else is permanent: retrying cannot
/// help, and callers should surface the error. [`DbError::is_transient`]
/// is the single classification point the retry policies key off.
#[derive(Debug)]
pub enum DbError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// A fault that is expected to clear on retry (spurious `EIO`, failed
    /// sync with state intact). The operation was *not* performed.
    Transient(String),
    /// On-disk or in-log bytes failed validation (bad magic, checksum,
    /// truncated record, impossible offsets).
    Corruption(String),
    /// A page has no room for the requested record.
    PageFull,
    /// A record reference pointed at a missing page or slot.
    RecordNotFound { page: u64, slot: u16 },
    /// Schema-level misuse: wrong arity, unknown column, bad column name.
    Schema(String),
    /// A value did not match the column's declared type.
    TypeMismatch { expected: String, found: String },
    /// Catalog-level misuse: duplicate or missing table/index.
    Catalog(String),
    /// SQL text failed to lex or parse.
    SqlParse(String),
    /// SQL referenced unknown tables/columns or was semantically invalid.
    SqlBind(String),
    /// Expression evaluation failed (type error, division by zero, ...).
    Eval(String),
    /// Transaction misuse (commit/abort without begin, nested begin).
    Txn(String),
    /// A snapshot reader's page versions were reclaimed while it held the
    /// snapshot open. The reader must drop its handle and begin a fresh
    /// snapshot; the data itself is intact.
    SnapshotTooOld {
        /// The LSN the reader captured at `begin_snapshot`.
        snapshot_lsn: u64,
        /// The oldest LSN the version store still retains in full.
        oldest_retained_lsn: u64,
    },
    /// The delta backlog is at capacity: the producer must wait for the
    /// consumer to drain (ack) before issuing more writes. The operation
    /// was *not* performed — no storage mutation happened.
    Backpressure {
        /// Entries currently queued.
        pending: usize,
        /// The configured backlog cap.
        capacity: usize,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Io(e) => write!(f, "io error: {e}"),
            DbError::Transient(msg) => write!(f, "transient i/o error: {msg}"),
            DbError::Corruption(msg) => write!(f, "corruption: {msg}"),
            DbError::PageFull => f.write_str("page full"),
            DbError::RecordNotFound { page, slot } => {
                write!(f, "record not found: page {page} slot {slot}")
            }
            DbError::Schema(msg) => write!(f, "schema error: {msg}"),
            DbError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            DbError::Catalog(msg) => write!(f, "catalog error: {msg}"),
            DbError::SqlParse(msg) => write!(f, "sql parse error: {msg}"),
            DbError::SqlBind(msg) => write!(f, "sql bind error: {msg}"),
            DbError::Eval(msg) => write!(f, "evaluation error: {msg}"),
            DbError::Txn(msg) => write!(f, "transaction error: {msg}"),
            DbError::SnapshotTooOld {
                snapshot_lsn,
                oldest_retained_lsn,
            } => write!(
                f,
                "snapshot too old: lsn {snapshot_lsn} reclaimed (oldest retained {oldest_retained_lsn}); begin a new snapshot"
            ),
            DbError::Backpressure { pending, capacity } => write!(
                f,
                "backpressure: delta backlog full ({pending}/{capacity}); consumer must ack before more writes"
            ),
        }
    }
}

impl DbError {
    /// Whether a bounded retry is expected to succeed. `Interrupted` I/O
    /// errors are transient by POSIX semantics; everything else permanent.
    pub fn is_transient(&self) -> bool {
        match self {
            DbError::Transient(_) => true,
            DbError::Io(e) => e.kind() == io::ErrorKind::Interrupted,
            _ => false,
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DbError {
    fn from(e: io::Error) -> DbError {
        DbError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DbError::RecordNotFound { page: 3, slot: 7 };
        assert_eq!(e.to_string(), "record not found: page 3 slot 7");
        let e = DbError::TypeMismatch {
            expected: "INT".into(),
            found: "TEXT".into(),
        };
        assert!(e.to_string().contains("expected INT"));
    }

    #[test]
    fn transient_classification() {
        assert!(DbError::Transient("spurious EIO".into()).is_transient());
        assert!(DbError::Io(io::Error::new(io::ErrorKind::Interrupted, "eintr")).is_transient());
        assert!(!DbError::Io(io::Error::new(io::ErrorKind::NotFound, "gone")).is_transient());
        assert!(!DbError::Corruption("bad crc".into()).is_transient());
        assert!(DbError::Transient("x".into())
            .to_string()
            .contains("transient"));
    }

    #[test]
    fn snapshot_and_backpressure_are_typed_and_permanent() {
        // Neither clears on a blind retry of the same call: the reader must
        // re-begin, the producer must wait for acks. `retry_transient` must
        // not spin on them.
        let e = DbError::SnapshotTooOld {
            snapshot_lsn: 3,
            oldest_retained_lsn: 9,
        };
        assert!(!e.is_transient());
        assert!(e.to_string().contains("snapshot too old"));
        let e = DbError::Backpressure {
            pending: 128,
            capacity: 128,
        };
        assert!(!e.is_transient());
        assert!(e.to_string().contains("128/128"));
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let io = io::Error::new(io::ErrorKind::NotFound, "gone");
        let e: DbError = io.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
