//! Deterministic fault injection for the durable stack.
//!
//! Every I/O the engine performs — page reads/writes/syncs through a
//! [`PageStore`] and WAL appends/truncations (see [`crate::wal::Wal`]) — is
//! an injectable *failpoint*. A [`FaultPlan`] decides, purely from the
//! global I/O-op index (clock-free, seed-deterministic), whether a given op
//! proceeds, fails transiently, tears, or crash-stops the process model.
//! The shared counter lives in a [`FaultInjector`], which the
//! [`FaultStore`] wrapper and the WAL backend both consult, so "the Nth I/O
//! op" means the Nth op *across the whole database*, in execution order.
//!
//! Fault kinds (see [`FaultKind`]):
//!
//! * **Transient** — the op fails once with [`DbError::Transient`] and is
//!   *not* performed; an immediate retry sees no fault. Models a spurious
//!   `EIO`.
//! * **SyncFail** — like `Transient` but semantically a failed
//!   `fsync`: nothing new was made durable, state is intact, retryable.
//! * **TornWrite** — for write ops, only a deterministic byte prefix of
//!   the data reaches the medium, then the injector enters the crashed
//!   state. Models power loss mid-write (the classic torn WAL frame /
//!   torn page).
//! * **CrashStop** — the op and every subsequent op fail permanently.
//!   The surviving bytes are exactly what earlier ops made durable.
//!
//! Determinism: the op counter is the only clock, and torn-write prefix
//! lengths are derived from `splitmix64(seed ^ op_index)`, so a plan
//! replayed over the same workload tears the same bytes every time.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::disk::PageStore;
use crate::error::{DbError, DbResult};
use crate::page::PAGE_SIZE;

/// What kind of failure a triggered failpoint injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail this op once with [`DbError::Transient`]; the op is skipped,
    /// state is untouched, and a retry proceeds normally.
    Transient,
    /// A sync the medium reports as failed without losing state. Behaves
    /// like [`FaultKind::Transient`] (retryable, nothing performed).
    SyncFail,
    /// Persist only a deterministic byte prefix of the write, then enter
    /// the crashed state. On non-write ops this degenerates to
    /// [`FaultKind::CrashStop`].
    TornWrite,
    /// Crash-stop: this op and all later ops fail permanently.
    CrashStop,
}

/// Which failpoint an I/O op is passing through (diagnostics and
/// schedule targeting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// [`PageStore::read_page`].
    PageRead,
    /// [`PageStore::write_page`].
    PageWrite,
    /// [`PageStore::sync`].
    PageSync,
    /// WAL append + fsync ([`crate::wal::Wal::sync`]).
    WalSync,
    /// WAL truncation ([`crate::wal::Wal::truncate`]).
    WalTruncate,
    /// WAL read-back ([`crate::wal::Wal::replay`]).
    WalReplay,
    /// Delta-log group commit: append + fsync of buffered delta frames
    /// (`qpv_core::deltalog`).
    DeltaSync,
    /// Delta-log read-back during recovery.
    DeltaReplay,
    /// Delta-log tail reset after a published snapshot.
    DeltaTruncate,
    /// Compiled-population snapshot file write + fsync.
    SnapshotWrite,
    /// Snapshot generation publish (the `CURRENT` rename swing).
    SnapshotPublish,
    /// Snapshot read-back during recovery.
    SnapshotRead,
    /// Version-store publish: committed page images copied into the
    /// visibility index at a commit boundary (`crate::snapshot`).
    VersionPublish,
    /// Version-store page fetch by a snapshot reader.
    VersionRead,
    /// Version-store reclamation (pruning history below the retention
    /// floor).
    VersionPrune,
}

impl FaultOp {
    /// Whether the op writes bytes (and can therefore tear).
    fn is_write(self) -> bool {
        matches!(
            self,
            FaultOp::PageWrite | FaultOp::WalSync | FaultOp::DeltaSync | FaultOp::SnapshotWrite
        )
    }
}

/// When faults trigger, relative to the global I/O-op index.
#[derive(Debug, Clone)]
enum Trigger {
    /// Never fire (counting-only and schedule-only plans).
    Never,
    /// Fire `kind` exactly at op `n`.
    AtOp(u64, FaultKind),
    /// Fire `kind` at every op index divisible by `k` (op 0 excluded so a
    /// workload always gets at least one clean op).
    EveryKth(u64, FaultKind),
}

/// A clock-free, seed-deterministic description of which I/O ops fault and
/// how. Construct one, wrap it in a [`FaultInjector`], and hand it to
/// [`crate::db::Database::open_with_faults`] (or a [`FaultStore`] /
/// [`crate::wal::Wal::open_with`] directly).
///
/// Every plan carries a base trigger *and* a scripted `(op_index, kind)`
/// schedule, and both are live at once: chain [`FaultPlan::and_fail_at`]
/// onto any constructor to layer scheduled faults over a periodic trigger —
/// e.g. `every_kth(5, Transient).and_fail_at(37, CrashStop)` exercises a
/// flaky medium that eventually dies, in a single deterministic run. Where
/// a scheduled entry and the base trigger collide on the same op index, the
/// scheduled entry wins (explicit beats periodic).
#[derive(Debug, Clone)]
pub struct FaultPlan {
    trigger: Trigger,
    schedule: Vec<(u64, FaultKind)>,
    seed: u64,
}

impl FaultPlan {
    /// A plan that never faults — useful for counting a workload's I/O ops.
    pub fn none() -> FaultPlan {
        FaultPlan {
            trigger: Trigger::Never,
            schedule: Vec::new(),
            seed: 0,
        }
    }

    /// Inject `kind` exactly at global I/O op `n`.
    pub fn fail_at(n: u64, kind: FaultKind) -> FaultPlan {
        FaultPlan {
            trigger: Trigger::AtOp(n, kind),
            schedule: Vec::new(),
            seed: n,
        }
    }

    /// Inject `kind` at every op whose index is a positive multiple of `k`.
    pub fn every_kth(k: u64, kind: FaultKind) -> FaultPlan {
        FaultPlan {
            trigger: Trigger::EveryKth(k.max(1), kind),
            schedule: Vec::new(),
            seed: k,
        }
    }

    /// Inject the scripted `(op_index, kind)` schedule — any number of
    /// triggers, any order.
    pub fn script(schedule: Vec<(u64, FaultKind)>) -> FaultPlan {
        FaultPlan {
            trigger: Trigger::Never,
            schedule,
            seed: 0,
        }
    }

    /// Add one scheduled fault on top of this plan's existing triggers.
    /// Chainable, so multi-fault schedules compose from any base plan.
    pub fn and_fail_at(mut self, n: u64, kind: FaultKind) -> FaultPlan {
        self.schedule.push((n, kind));
        self
    }

    /// Override the seed that torn-write prefix lengths derive from.
    pub fn with_seed(mut self, seed: u64) -> FaultPlan {
        self.seed = seed;
        self
    }

    fn fault_for(&self, op_index: u64) -> Option<FaultKind> {
        if let Some((_, kind)) = self.schedule.iter().find(|(n, _)| *n == op_index) {
            return Some(*kind);
        }
        match &self.trigger {
            Trigger::Never => None,
            Trigger::AtOp(n, kind) if *n == op_index => Some(*kind),
            Trigger::AtOp(..) => None,
            Trigger::EveryKth(k, kind) if op_index > 0 && op_index.is_multiple_of(*k) => {
                Some(*kind)
            }
            Trigger::EveryKth(..) => None,
        }
    }
}

/// SplitMix64: the standard 64-bit mixing function. Used to derive torn
/// prefix lengths deterministically from `(seed, op_index)`, and full-jitter
/// backoff durations from `(attempt, salt)` — every random-looking choice in
/// the fault stack flows through this one mixer so runs stay replayable.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// What the failpoint told the caller to do.
#[derive(Debug)]
pub enum FaultDecision {
    /// No fault: perform the op normally.
    Proceed,
    /// Write only the first `keep` bytes, then return the crash error.
    Torn {
        /// Number of leading bytes that reach the medium.
        keep: usize,
    },
    /// Do not perform the op; return this error.
    Fail(DbError),
}

struct InjectorState {
    plan: FaultPlan,
    next_op: AtomicU64,
    crashed: AtomicBool,
}

/// The shared failpoint: counts I/O ops across every component it is
/// attached to and applies the [`FaultPlan`]. Cloning shares the counter.
#[derive(Clone)]
pub struct FaultInjector {
    state: Arc<InjectorState>,
}

impl FaultInjector {
    /// An injector executing `plan` from op index 0.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            state: Arc::new(InjectorState {
                plan,
                next_op: AtomicU64::new(0),
                crashed: AtomicBool::new(false),
            }),
        }
    }

    /// Total I/O ops observed so far (the next op's index).
    pub fn ops_seen(&self) -> u64 {
        self.state.next_op.load(Ordering::SeqCst)
    }

    /// Whether a torn write or crash-stop has fired.
    pub fn crashed(&self) -> bool {
        self.state.crashed.load(Ordering::SeqCst)
    }

    /// Pass an op of kind `op` carrying `write_len` bytes (0 for reads and
    /// syncs) through the failpoint.
    pub fn check(&self, op: FaultOp, write_len: usize) -> FaultDecision {
        if self.crashed() {
            return FaultDecision::Fail(crash_error(op));
        }
        let index = self.state.next_op.fetch_add(1, Ordering::SeqCst);
        match self.state.plan.fault_for(index) {
            None => FaultDecision::Proceed,
            Some(FaultKind::Transient) => FaultDecision::Fail(DbError::Transient(format!(
                "injected transient fault at op {index} ({op:?})"
            ))),
            Some(FaultKind::SyncFail) => FaultDecision::Fail(DbError::Transient(format!(
                "injected sync failure at op {index} ({op:?})"
            ))),
            Some(FaultKind::TornWrite) => {
                self.state.crashed.store(true, Ordering::SeqCst);
                if op.is_write() && write_len > 0 {
                    let keep = (splitmix64(self.state.plan.seed ^ index) % (write_len as u64 + 1))
                        as usize;
                    FaultDecision::Torn { keep }
                } else {
                    FaultDecision::Fail(crash_error(op))
                }
            }
            Some(FaultKind::CrashStop) => {
                self.state.crashed.store(true, Ordering::SeqCst);
                FaultDecision::Fail(crash_error(op))
            }
        }
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("plan", &self.state.plan)
            .field("ops_seen", &self.ops_seen())
            .field("crashed", &self.crashed())
            .finish()
    }
}

/// The error every op observes once the injector is in the crashed state.
pub fn crash_error(op: FaultOp) -> DbError {
    DbError::Io(std::io::Error::other(format!(
        "simulated crash-stop ({op:?})"
    )))
}

/// A [`PageStore`] wrapper that routes every op through a
/// [`FaultInjector`]. Torn page writes splice the surviving prefix of the
/// new bytes onto the old page contents, exactly what a power loss
/// mid-`pwrite` leaves behind.
pub struct FaultStore {
    inner: Box<dyn PageStore>,
    injector: FaultInjector,
}

impl FaultStore {
    /// Wrap `inner` with the failpoints of `injector`.
    pub fn new(inner: Box<dyn PageStore>, injector: FaultInjector) -> FaultStore {
        FaultStore { inner, injector }
    }

    /// Unwrap, recovering the underlying store (the surviving bytes after
    /// a simulated crash).
    pub fn into_inner(self) -> Box<dyn PageStore> {
        self.inner
    }
}

impl PageStore for FaultStore {
    fn read_page(&mut self, page_id: u64, buf: &mut [u8; PAGE_SIZE]) -> DbResult<()> {
        match self.injector.check(FaultOp::PageRead, 0) {
            FaultDecision::Proceed => self.inner.read_page(page_id, buf),
            FaultDecision::Torn { .. } => unreachable!("reads cannot tear"),
            FaultDecision::Fail(e) => Err(e),
        }
    }

    fn write_page(&mut self, page_id: u64, buf: &[u8; PAGE_SIZE]) -> DbResult<()> {
        match self.injector.check(FaultOp::PageWrite, PAGE_SIZE) {
            FaultDecision::Proceed => self.inner.write_page(page_id, buf),
            FaultDecision::Torn { keep } => {
                // Splice the surviving prefix onto whatever the page held
                // before (zeros if it never existed).
                let mut torn = [0u8; PAGE_SIZE];
                if page_id < self.inner.num_pages() {
                    let _ = self.inner.read_page(page_id, &mut torn);
                }
                torn[..keep].copy_from_slice(&buf[..keep]);
                self.inner.write_page(page_id, &torn)?;
                Err(crash_error(FaultOp::PageWrite))
            }
            FaultDecision::Fail(e) => Err(e),
        }
    }

    fn num_pages(&self) -> u64 {
        self.inner.num_pages()
    }

    fn sync(&mut self) -> DbResult<()> {
        match self.injector.check(FaultOp::PageSync, 0) {
            FaultDecision::Proceed => self.inner.sync(),
            FaultDecision::Torn { .. } => unreachable!("syncs carry no bytes"),
            FaultDecision::Fail(e) => Err(e),
        }
    }
}

/// Bounded retry with exponential backoff for [`DbError::Transient`]
/// faults. `max_retries == 0` disables retrying entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failure (total attempts = `max_retries + 1`).
    pub max_retries: u32,
    /// Sleep before retry `i` is `base_backoff << i` (exponential).
    pub base_backoff: Duration,
}

impl RetryPolicy {
    /// No retries: every transient fault surfaces immediately.
    pub const fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            base_backoff: Duration::from_micros(0),
        }
    }

    /// The durable-path default: 3 retries starting at 100µs backoff.
    pub const fn standard() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_micros(100),
        }
    }

    /// The backoff *ceiling* before retry attempt `attempt` (0-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        self.base_backoff
            .checked_mul(1u32 << attempt.min(16))
            .unwrap_or(Duration::from_secs(1))
    }

    /// Full-jitter backoff: a deterministic pseudo-uniform duration in
    /// `[0, backoff(attempt)]`, derived from `salt` via [`splitmix64`].
    /// Full jitter breaks the lockstep that plain exponential backoff
    /// produces when several threads observe the same transient fault at
    /// the same moment and then all retry in phase.
    pub fn jittered_backoff(&self, attempt: u32, salt: u64) -> Duration {
        let cap = self.backoff(attempt).as_nanos() as u64;
        if cap == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(splitmix64(salt ^ ((attempt as u64) << 48)) % (cap + 1))
    }
}

/// Process-wide salt source for retry jitter: each retry loop draws a fresh
/// salt, so two threads that hit the same fault at the same op index still
/// sleep decorrelated durations. An atomic counter (not a clock) keeps the
/// whole fault stack clock-free.
static JITTER_SALT: AtomicU64 = AtomicU64::new(0x9e37_79b9);

/// A fresh, process-unique jitter salt.
pub fn jitter_salt() -> u64 {
    JITTER_SALT.fetch_add(0x6a09_e667_f3bc_c909, Ordering::Relaxed)
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::none()
    }
}

/// Run `op` until it succeeds, fails permanently, or exhausts
/// `policy.max_retries` retries of transient faults, sleeping a full-jitter
/// backoff between attempts.
///
/// Callers holding a lock other threads contend on should prefer
/// [`retry_transient_nosleep`] inside the critical section and sleep at
/// their own level, outside it — see `SharedDatabase` in `crate::db`.
pub fn retry_transient<T>(policy: RetryPolicy, mut op: impl FnMut() -> DbResult<T>) -> DbResult<T> {
    let salt = jitter_salt();
    let mut attempt = 0;
    loop {
        match op() {
            Err(e) if e.is_transient() && attempt < policy.max_retries => {
                std::thread::sleep(policy.jittered_backoff(attempt, salt));
                attempt += 1;
            }
            other => return other,
        }
    }
}

/// Like [`retry_transient`] but never sleeps: transient faults are retried
/// immediately, back to back. This is the variant to use while holding a
/// shared lock — a single-shot transient (the common injected case and the
/// spurious-`EIO` model) clears on the immediate retry, and anything that
/// needs real waiting is surfaced to the caller, which can back off after
/// releasing the lock.
/// Dispatch to [`retry_transient`] (sleeping full-jitter backoff) or
/// [`retry_transient_nosleep`] depending on `sleep`. The storage layers
/// thread a "may I sleep here?" flag down to every retry site so that
/// [`crate::db::SharedDatabase`] can forbid in-lock sleeping wholesale and
/// re-introduce the backoff outside its mutex.
pub fn retry_transient_with<T>(
    policy: RetryPolicy,
    sleep: bool,
    op: impl FnMut() -> DbResult<T>,
) -> DbResult<T> {
    if sleep {
        retry_transient(policy, op)
    } else {
        retry_transient_nosleep(policy, op)
    }
}

pub fn retry_transient_nosleep<T>(
    policy: RetryPolicy,
    mut op: impl FnMut() -> DbResult<T>,
) -> DbResult<T> {
    let mut attempt = 0;
    loop {
        match op() {
            Err(e) if e.is_transient() && attempt < policy.max_retries => attempt += 1,
            other => return other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemStore;

    #[test]
    fn plan_triggers_fire_deterministically() {
        let plan = FaultPlan::fail_at(3, FaultKind::Transient);
        assert_eq!(plan.fault_for(2), None);
        assert_eq!(plan.fault_for(3), Some(FaultKind::Transient));
        assert_eq!(plan.fault_for(4), None);

        let plan = FaultPlan::every_kth(4, FaultKind::SyncFail);
        assert_eq!(plan.fault_for(0), None, "op 0 is always clean");
        assert_eq!(plan.fault_for(4), Some(FaultKind::SyncFail));
        assert_eq!(plan.fault_for(8), Some(FaultKind::SyncFail));
        assert_eq!(plan.fault_for(5), None);

        let plan = FaultPlan::script(vec![(1, FaultKind::Transient), (5, FaultKind::CrashStop)]);
        assert_eq!(plan.fault_for(1), Some(FaultKind::Transient));
        assert_eq!(plan.fault_for(5), Some(FaultKind::CrashStop));
        assert_eq!(plan.fault_for(3), None);
    }

    #[test]
    fn schedules_compose_onto_any_base_trigger() {
        // Periodic transients plus a scheduled crash, in one plan.
        let plan = FaultPlan::every_kth(4, FaultKind::Transient)
            .and_fail_at(6, FaultKind::CrashStop)
            .and_fail_at(9, FaultKind::TornWrite);
        assert_eq!(plan.fault_for(4), Some(FaultKind::Transient));
        assert_eq!(plan.fault_for(6), Some(FaultKind::CrashStop));
        assert_eq!(plan.fault_for(9), Some(FaultKind::TornWrite));
        assert_eq!(plan.fault_for(7), None);
        // On a collision the scheduled entry wins over the periodic base.
        let plan =
            FaultPlan::every_kth(4, FaultKind::Transient).and_fail_at(8, FaultKind::CrashStop);
        assert_eq!(plan.fault_for(8), Some(FaultKind::CrashStop));
        // Chaining onto a script keeps the original entries live too.
        let plan =
            FaultPlan::script(vec![(2, FaultKind::SyncFail)]).and_fail_at(3, FaultKind::CrashStop);
        assert_eq!(plan.fault_for(2), Some(FaultKind::SyncFail));
        assert_eq!(plan.fault_for(3), Some(FaultKind::CrashStop));
    }

    #[test]
    fn transient_faults_clear_on_retry() {
        let injector = FaultInjector::new(FaultPlan::fail_at(1, FaultKind::Transient));
        let mut store = FaultStore::new(Box::new(MemStore::new()), injector.clone());
        let page = [7u8; PAGE_SIZE];
        store.write_page(0, &page).unwrap(); // op 0: clean
        let err = store.write_page(1, &page).unwrap_err(); // op 1: transient
        assert!(err.is_transient(), "{err}");
        store.write_page(1, &page).unwrap(); // op 2: retry succeeds
        assert!(!injector.crashed());
        assert_eq!(injector.ops_seen(), 3);
    }

    #[test]
    fn crash_stop_is_permanent() {
        let injector = FaultInjector::new(FaultPlan::fail_at(1, FaultKind::CrashStop));
        let mut store = FaultStore::new(Box::new(MemStore::new()), injector.clone());
        let page = [1u8; PAGE_SIZE];
        store.write_page(0, &page).unwrap();
        assert!(store.write_page(1, &page).is_err());
        assert!(injector.crashed());
        // Everything after the crash fails, including reads and syncs.
        let mut buf = [0u8; PAGE_SIZE];
        assert!(store.read_page(0, &mut buf).is_err());
        assert!(store.sync().is_err());
    }

    #[test]
    fn torn_page_write_keeps_a_prefix_of_the_new_bytes() {
        let injector = FaultInjector::new(FaultPlan::fail_at(2, FaultKind::TornWrite).with_seed(9));
        let mut store = FaultStore::new(Box::new(MemStore::new()), injector.clone());
        let old = [0xaau8; PAGE_SIZE];
        store.write_page(0, &old).unwrap(); // op 0
        store.sync().unwrap(); // op 1
        let new = [0xbbu8; PAGE_SIZE];
        assert!(store.write_page(0, &new).is_err()); // op 2: tears
        assert!(injector.crashed());
        // Inspect the surviving bytes: a (possibly empty) prefix of the new
        // value spliced onto the old contents, with one clean boundary.
        let mut inner = store.into_inner();
        let mut buf = [0u8; PAGE_SIZE];
        inner.read_page(0, &mut buf).unwrap();
        let keep = buf.iter().take_while(|b| **b == 0xbb).count();
        assert!(
            buf[keep..].iter().all(|b| *b == 0xaa),
            "clean torn boundary"
        );
    }

    #[test]
    fn torn_prefix_is_seed_deterministic() {
        for seed in [0u64, 1, 42] {
            let a = FaultInjector::new(FaultPlan::fail_at(0, FaultKind::TornWrite).with_seed(seed));
            let b = FaultInjector::new(FaultPlan::fail_at(0, FaultKind::TornWrite).with_seed(seed));
            let ka = match a.check(FaultOp::WalSync, 1000) {
                FaultDecision::Torn { keep } => keep,
                other => panic!("{other:?}"),
            };
            let kb = match b.check(FaultOp::WalSync, 1000) {
                FaultDecision::Torn { keep } => keep,
                other => panic!("{other:?}"),
            };
            assert_eq!(ka, kb, "seed {seed}");
            assert!(ka <= 1000);
        }
    }

    #[test]
    fn retry_policy_bounds_and_backoff() {
        let policy = RetryPolicy::standard();
        let mut attempts = 0;
        let result: DbResult<()> = retry_transient(policy, || {
            attempts += 1;
            Err(DbError::Transient("always".into()))
        });
        assert!(result.is_err());
        assert_eq!(attempts, policy.max_retries as usize + 1);

        // A fault that clears after one retry succeeds.
        let mut attempts = 0;
        let result = retry_transient(policy, || {
            attempts += 1;
            if attempts == 1 {
                Err(DbError::Transient("once".into()))
            } else {
                Ok(attempts)
            }
        });
        assert_eq!(result.unwrap(), 2);

        // Permanent errors are never retried.
        let mut attempts = 0;
        let result: DbResult<()> = retry_transient(policy, || {
            attempts += 1;
            Err(DbError::Corruption("permanent".into()))
        });
        assert!(matches!(result, Err(DbError::Corruption(_))));
        assert_eq!(attempts, 1);
    }

    #[test]
    fn jittered_backoff_is_bounded_and_salt_sensitive() {
        let policy = RetryPolicy::standard();
        for attempt in 0..4 {
            let cap = policy.backoff(attempt);
            for salt in [0u64, 1, 99, 0xdead_beef] {
                let d = policy.jittered_backoff(attempt, salt);
                assert!(d <= cap, "attempt {attempt} salt {salt}: {d:?} > {cap:?}");
                // Deterministic: same inputs, same duration.
                assert_eq!(d, policy.jittered_backoff(attempt, salt));
            }
        }
        // Different salts decorrelate (not all equal for a non-zero cap).
        let ds: Vec<_> = (0..16u64)
            .map(|s| policy.jittered_backoff(3, splitmix64(s)))
            .collect();
        assert!(ds.iter().any(|d| *d != ds[0]), "salts must decorrelate");
        // Zero-backoff policies never sleep.
        assert_eq!(RetryPolicy::none().jittered_backoff(5, 42), Duration::ZERO);
    }

    #[test]
    fn nosleep_retry_matches_sleeping_retry_semantics() {
        let policy = RetryPolicy::standard();
        let mut attempts = 0;
        let result = retry_transient_nosleep(policy, || {
            attempts += 1;
            if attempts <= 2 {
                Err(DbError::Transient("twice".into()))
            } else {
                Ok(attempts)
            }
        });
        assert_eq!(result.unwrap(), 3);
        let mut attempts = 0;
        let result: DbResult<()> = retry_transient_nosleep(policy, || {
            attempts += 1;
            Err(DbError::Transient("always".into()))
        });
        assert!(result.is_err());
        assert_eq!(attempts, policy.max_retries as usize + 1);
    }
}
