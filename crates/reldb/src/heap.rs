//! Table heaps: unordered record storage across a chain of pages.
//!
//! A [`TableHeap`] owns a singly-linked chain of slotted pages. Inserts go to
//! the tail page (allocating and linking a new page when the tail is full);
//! scans walk the chain in order with a resumable [`HeapCursor`]. Records are
//! addressed by [`RowId`] — `(page, slot)` — which stays stable except for
//! updates that outgrow their page (those return the record's new id).

use serde::{Deserialize, Serialize};

use crate::buffer::BufferPool;
use crate::error::{DbError, DbResult};
use crate::row::RowId;

/// An unordered record store over a page chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableHeap {
    first_page: u64,
    last_page: u64,
}

impl TableHeap {
    /// Create a heap with one empty page.
    pub fn create(pool: &mut BufferPool) -> DbResult<TableHeap> {
        let first = pool.allocate()?;
        Ok(TableHeap {
            first_page: first,
            last_page: first,
        })
    }

    /// Reconstruct a heap handle from catalog metadata.
    pub fn from_parts(first_page: u64, last_page: u64) -> TableHeap {
        TableHeap {
            first_page,
            last_page,
        }
    }

    /// The first page of the chain.
    pub fn first_page(&self) -> u64 {
        self.first_page
    }

    /// The last page of the chain.
    pub fn last_page(&self) -> u64 {
        self.last_page
    }

    /// Append a record, returning its address.
    pub fn insert(&mut self, pool: &mut BufferPool, record: &[u8]) -> DbResult<RowId> {
        let tail = pool.page_mut(self.last_page)?;
        match tail.insert(record) {
            Ok(slot) => Ok(RowId::new(self.last_page, slot)),
            Err(DbError::PageFull) => {
                let new_page = pool.allocate()?;
                pool.page_mut(self.last_page)?.set_next_page(Some(new_page));
                self.last_page = new_page;
                let slot = pool.page_mut(new_page)?.insert(record)?;
                Ok(RowId::new(new_page, slot))
            }
            Err(e) => Err(e),
        }
    }

    /// Fetch a record by address.
    pub fn get(&self, pool: &mut BufferPool, rid: RowId) -> DbResult<Vec<u8>> {
        let page = pool.page(rid.page)?;
        page.get(rid.slot)
            .map(<[u8]>::to_vec)
            .ok_or(DbError::RecordNotFound {
                page: rid.page,
                slot: rid.slot,
            })
    }

    /// Delete a record. Returns whether a live record was removed.
    pub fn delete(&self, pool: &mut BufferPool, rid: RowId) -> DbResult<bool> {
        Ok(pool.page_mut(rid.page)?.delete(rid.slot))
    }

    /// Replace a record. Usually in place; if the new bytes no longer fit in
    /// the record's page the record moves, and the *new* address is
    /// returned.
    pub fn update(&mut self, pool: &mut BufferPool, rid: RowId, record: &[u8]) -> DbResult<RowId> {
        match pool.page_mut(rid.page)?.update(rid.slot, record) {
            Ok(()) => Ok(rid),
            Err(DbError::PageFull) => {
                pool.page_mut(rid.page)?.delete(rid.slot);
                self.insert(pool, record)
            }
            Err(e) => Err(e),
        }
    }

    /// Start a scan over the whole heap.
    pub fn cursor(&self) -> HeapCursor {
        HeapCursor {
            next_page: Some(self.first_page),
            slot: 0,
        }
    }

    /// Count live records (walks the chain).
    pub fn count(&self, pool: &mut BufferPool) -> DbResult<usize> {
        let mut cursor = self.cursor();
        let mut n = 0;
        while cursor.next(pool)?.is_some() {
            n += 1;
        }
        Ok(n)
    }
}

/// A resumable position in a heap scan.
///
/// The cursor holds no page borrows between calls, so scans interleave
/// freely with other pool traffic (at the cost of refetching the current
/// page from the pool on each step — a hash lookup when resident).
#[derive(Debug, Clone)]
pub struct HeapCursor {
    next_page: Option<u64>,
    slot: u16,
}

impl HeapCursor {
    /// The next live record, or `None` at end of heap.
    pub fn next(&mut self, pool: &mut BufferPool) -> DbResult<Option<(RowId, Vec<u8>)>> {
        loop {
            let page_id = match self.next_page {
                Some(id) => id,
                None => return Ok(None),
            };
            let page = pool.page(page_id)?;
            while self.slot < page.slot_count() {
                let slot = self.slot;
                self.slot += 1;
                if let Some(record) = page.get(slot) {
                    return Ok(Some((RowId::new(page_id, slot), record.to_vec())));
                }
            }
            self.next_page = page.next_page();
            self.slot = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemStore;

    fn pool() -> BufferPool {
        BufferPool::new(Box::new(MemStore::new()), 8)
    }

    fn collect(heap: &TableHeap, pool: &mut BufferPool) -> Vec<(RowId, Vec<u8>)> {
        let mut cursor = heap.cursor();
        let mut out = Vec::new();
        while let Some(item) = cursor.next(pool).unwrap() {
            out.push(item);
        }
        out
    }

    #[test]
    fn insert_get_round_trip() {
        let mut pool = pool();
        let mut heap = TableHeap::create(&mut pool).unwrap();
        let rid = heap.insert(&mut pool, b"hello").unwrap();
        assert_eq!(heap.get(&mut pool, rid).unwrap(), b"hello");
    }

    #[test]
    fn grows_across_pages_and_scans_in_order() {
        let mut pool = pool();
        let mut heap = TableHeap::create(&mut pool).unwrap();
        let record = vec![0x5au8; 500];
        let mut rids = Vec::new();
        for i in 0..40 {
            let mut rec = record.clone();
            rec[0] = i as u8;
            rids.push(heap.insert(&mut pool, &rec).unwrap());
        }
        // 500-byte records, ~8 per page: the chain must have grown.
        assert!(heap.last_page() != heap.first_page());
        let scanned = collect(&heap, &mut pool);
        assert_eq!(scanned.len(), 40);
        for (i, (rid, rec)) in scanned.iter().enumerate() {
            assert_eq!(*rid, rids[i], "scan order must match insert order");
            assert_eq!(rec[0], i as u8);
        }
        assert_eq!(heap.count(&mut pool).unwrap(), 40);
    }

    #[test]
    fn delete_skips_in_scans() {
        let mut pool = pool();
        let mut heap = TableHeap::create(&mut pool).unwrap();
        let a = heap.insert(&mut pool, b"a").unwrap();
        let b = heap.insert(&mut pool, b"b").unwrap();
        let c = heap.insert(&mut pool, b"c").unwrap();
        assert!(heap.delete(&mut pool, b).unwrap());
        assert!(!heap.delete(&mut pool, b).unwrap());
        let scanned = collect(&heap, &mut pool);
        assert_eq!(
            scanned.iter().map(|(rid, _)| *rid).collect::<Vec<_>>(),
            vec![a, c]
        );
        assert!(matches!(
            heap.get(&mut pool, b),
            Err(DbError::RecordNotFound { .. })
        ));
    }

    #[test]
    fn update_in_place_preserves_rowid() {
        let mut pool = pool();
        let mut heap = TableHeap::create(&mut pool).unwrap();
        let rid = heap.insert(&mut pool, b"original").unwrap();
        let same = heap.update(&mut pool, rid, b"orig2").unwrap();
        assert_eq!(same, rid);
        assert_eq!(heap.get(&mut pool, rid).unwrap(), b"orig2");
    }

    #[test]
    fn oversized_update_moves_the_record() {
        let mut pool = pool();
        let mut heap = TableHeap::create(&mut pool).unwrap();
        // Fill the first page almost completely.
        let rid = heap.insert(&mut pool, b"victim").unwrap();
        while heap.last_page() == heap.first_page() {
            heap.insert(&mut pool, &[0u8; 256]).unwrap();
        }
        // Growing the victim beyond its page's free space forces a move.
        let big = vec![1u8; 2000];
        let new_rid = heap.update(&mut pool, rid, &big).unwrap();
        assert_ne!(new_rid, rid);
        assert_eq!(heap.get(&mut pool, new_rid).unwrap(), big);
        assert!(heap.get(&mut pool, rid).is_err());
    }

    #[test]
    fn scan_of_empty_heap_is_empty() {
        let mut pool = pool();
        let heap = TableHeap::create(&mut pool).unwrap();
        assert!(collect(&heap, &mut pool).is_empty());
        assert_eq!(heap.count(&mut pool).unwrap(), 0);
    }

    #[test]
    fn survives_buffer_pressure() {
        // Pool smaller than the chain: pages are evicted and refetched.
        let mut pool = BufferPool::new(Box::new(MemStore::new()), 2);
        let mut heap = TableHeap::create(&mut pool).unwrap();
        let mut rids = Vec::new();
        for i in 0..200u32 {
            rids.push(heap.insert(&mut pool, &i.to_le_bytes()).unwrap());
        }
        for (i, rid) in rids.iter().enumerate() {
            assert_eq!(heap.get(&mut pool, *rid).unwrap(), (i as u32).to_le_bytes());
        }
        assert_eq!(heap.count(&mut pool).unwrap(), 200);
    }
}
