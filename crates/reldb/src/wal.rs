//! The write-ahead log.
//!
//! The engine uses *logical* logging: every DDL statement and every committed
//! row mutation since the last checkpoint is recorded, and replayed through
//! the normal heap/catalog code paths on recovery (see
//! [`crate::db::Database::open`]). A checkpoint flushes all pages, snapshots
//! the catalog, and truncates the log.
//!
//! ## Frame format
//!
//! ```text
//! [len: u32 LE][crc32(lsn ‖ payload): u32 LE][lsn: u64 LE][payload bytes]
//! ```
//!
//! A torn tail (crash mid-append) is detected by length/checksum validation
//! and cleanly ignored: replay stops at the first invalid frame, which is
//! exactly the prefix-durability WAL semantics require.
//!
//! ## LSNs
//!
//! Every frame carries the **log sequence number** of the commit boundary
//! it belongs to: all frames buffered between two `sync` calls share one
//! LSN (`end_lsn + 1`), and a successful sync advances `end_lsn` to it.
//! The LSN is covered by the frame checksum, so a torn or bit-flipped LSN
//! ends replay exactly like a torn payload. Snapshot readers key off this
//! counter: a reader captures `wal_end_lsn` at begin and the version store
//! (`crate::snapshot`) serves page images visible at that boundary. The
//! counter is monotone for the lifetime of the `Wal` value — checkpoint
//! truncation empties the log but never rewinds `end_lsn`, so an open
//! snapshot stays well-ordered across checkpoints.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use bytes::{Buf, BufMut};

use crate::disk::sync_dir;
use crate::encoding::{get_varint, put_varint};
use crate::error::{DbError, DbResult};
use crate::fault::{crash_error, FaultDecision, FaultInjector, FaultOp};
use crate::row::RowId;
use crate::schema::{Column, Schema};
use crate::types::DataType;

/// CRC-32 (IEEE 802.3, reflected) lookup tables, built at compile time.
/// `CRC_TABLES[0]` is the classic byte-at-a-time table; tables 1..8
/// extend it for slicing-by-8, which processes 8 input bytes per step —
/// the same polynomial and the same output as the byte loop, but ~6×
/// the throughput, which matters once whole population snapshots (tens
/// of MB) are checksummed on the recovery path, not just WAL frames.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xedb8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xff) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
};

/// CRC-32 checksum of `bytes` (slicing-by-8).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = CRC_TABLES[7][(lo & 0xff) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xff) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xff) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xff) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xff) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xff) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

/// One logical log record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A transaction started.
    Begin {
        /// Transaction id.
        txn: u64,
    },
    /// A transaction committed; its mutations are durable.
    Commit {
        /// Transaction id.
        txn: u64,
    },
    /// A transaction aborted; its mutations must not be replayed.
    Abort {
        /// Transaction id.
        txn: u64,
    },
    /// A row was inserted.
    Insert {
        /// Owning transaction.
        txn: u64,
        /// Target table id.
        table: u32,
        /// Where the row landed at runtime (replay may relocate it).
        rid: RowId,
        /// Encoded row bytes.
        bytes: Vec<u8>,
    },
    /// A row was deleted.
    Delete {
        /// Owning transaction.
        txn: u64,
        /// Target table id.
        table: u32,
        /// The deleted row's address.
        rid: RowId,
    },
    /// A row was replaced.
    Update {
        /// Owning transaction.
        txn: u64,
        /// Target table id.
        table: u32,
        /// The row's address before the update.
        rid: RowId,
        /// The new encoded row bytes.
        bytes: Vec<u8>,
    },
    /// DDL: a table was created (auto-committed).
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        schema: Schema,
    },
    /// DDL: an index was created (auto-committed).
    CreateIndex {
        /// Index name.
        name: String,
        /// Table name (names survive replay; ids may not).
        table: String,
        /// Indexed column position.
        column: u32,
    },
    /// DDL: a table (and its indexes) was dropped.
    DropTable {
        /// Table name.
        name: String,
    },
    /// DDL: an index was dropped.
    DropIndex {
        /// Index name.
        name: String,
    },
}

/// Append a length-prefixed UTF-8 string.
pub fn put_string(buf: &mut Vec<u8>, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

/// Read a string written by [`put_string`].
pub fn get_string(buf: &mut &[u8]) -> DbResult<String> {
    let len = get_varint(buf)? as usize;
    if buf.remaining() < len {
        return Err(DbError::Corruption("truncated string in wal".into()));
    }
    let s = String::from_utf8(buf[..len].to_vec())
        .map_err(|_| DbError::Corruption("invalid utf-8 in wal".into()))?;
    buf.advance(len);
    Ok(s)
}

/// Append a length-prefixed byte blob.
pub fn put_blob(buf: &mut Vec<u8>, b: &[u8]) {
    put_varint(buf, b.len() as u64);
    buf.put_slice(b);
}

/// Read a blob written by [`put_blob`].
pub fn get_blob(buf: &mut &[u8]) -> DbResult<Vec<u8>> {
    let len = get_varint(buf)? as usize;
    if buf.remaining() < len {
        return Err(DbError::Corruption("truncated blob in wal".into()));
    }
    let b = buf[..len].to_vec();
    buf.advance(len);
    Ok(b)
}

fn put_rid(buf: &mut Vec<u8>, rid: RowId) {
    put_varint(buf, rid.page);
    put_varint(buf, rid.slot as u64);
}

fn get_rid(buf: &mut &[u8]) -> DbResult<RowId> {
    let page = get_varint(buf)?;
    let slot = get_varint(buf)? as u16;
    Ok(RowId::new(page, slot))
}

fn dtype_tag(t: DataType) -> u8 {
    match t {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Text => 3,
        DataType::Bytes => 4,
    }
}

fn dtype_from_tag(tag: u8) -> DbResult<DataType> {
    Ok(match tag {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Text,
        4 => DataType::Bytes,
        other => return Err(DbError::Corruption(format!("bad dtype tag {other}"))),
    })
}

/// Encode a schema for the log / catalog snapshot.
pub fn put_schema(buf: &mut Vec<u8>, schema: &Schema) {
    put_varint(buf, schema.arity() as u64);
    for col in schema.columns() {
        put_string(buf, &col.name);
        buf.put_u8(dtype_tag(col.dtype));
        buf.put_u8(col.nullable as u8);
    }
}

/// Decode a schema written by [`put_schema`].
pub fn get_schema(buf: &mut &[u8]) -> DbResult<Schema> {
    let n = get_varint(buf)? as usize;
    if n > 4096 {
        return Err(DbError::Corruption(format!("schema claims {n} columns")));
    }
    let mut columns = Vec::with_capacity(n);
    for _ in 0..n {
        let name = get_string(buf)?;
        if buf.remaining() < 2 {
            return Err(DbError::Corruption("truncated column in wal".into()));
        }
        let dtype = dtype_from_tag(buf.get_u8())?;
        let nullable = buf.get_u8() != 0;
        columns.push(if nullable {
            Column::nullable(name, dtype)
        } else {
            Column::new(name, dtype)
        });
    }
    Schema::new(columns)
}

impl WalRecord {
    const T_BEGIN: u8 = 1;
    const T_COMMIT: u8 = 2;
    const T_ABORT: u8 = 3;
    const T_INSERT: u8 = 4;
    const T_DELETE: u8 = 5;
    const T_UPDATE: u8 = 6;
    const T_CREATE_TABLE: u8 = 7;
    const T_CREATE_INDEX: u8 = 8;
    const T_DROP_TABLE: u8 = 9;
    const T_DROP_INDEX: u8 = 10;

    /// Serialise into frame payload bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(32);
        match self {
            WalRecord::Begin { txn } => {
                buf.put_u8(Self::T_BEGIN);
                put_varint(&mut buf, *txn);
            }
            WalRecord::Commit { txn } => {
                buf.put_u8(Self::T_COMMIT);
                put_varint(&mut buf, *txn);
            }
            WalRecord::Abort { txn } => {
                buf.put_u8(Self::T_ABORT);
                put_varint(&mut buf, *txn);
            }
            WalRecord::Insert {
                txn,
                table,
                rid,
                bytes,
            } => {
                buf.put_u8(Self::T_INSERT);
                put_varint(&mut buf, *txn);
                put_varint(&mut buf, *table as u64);
                put_rid(&mut buf, *rid);
                put_blob(&mut buf, bytes);
            }
            WalRecord::Delete { txn, table, rid } => {
                buf.put_u8(Self::T_DELETE);
                put_varint(&mut buf, *txn);
                put_varint(&mut buf, *table as u64);
                put_rid(&mut buf, *rid);
            }
            WalRecord::Update {
                txn,
                table,
                rid,
                bytes,
            } => {
                buf.put_u8(Self::T_UPDATE);
                put_varint(&mut buf, *txn);
                put_varint(&mut buf, *table as u64);
                put_rid(&mut buf, *rid);
                put_blob(&mut buf, bytes);
            }
            WalRecord::CreateTable { name, schema } => {
                buf.put_u8(Self::T_CREATE_TABLE);
                put_string(&mut buf, name);
                put_schema(&mut buf, schema);
            }
            WalRecord::CreateIndex {
                name,
                table,
                column,
            } => {
                buf.put_u8(Self::T_CREATE_INDEX);
                put_string(&mut buf, name);
                put_string(&mut buf, table);
                put_varint(&mut buf, *column as u64);
            }
            WalRecord::DropTable { name } => {
                buf.put_u8(Self::T_DROP_TABLE);
                put_string(&mut buf, name);
            }
            WalRecord::DropIndex { name } => {
                buf.put_u8(Self::T_DROP_INDEX);
                put_string(&mut buf, name);
            }
        }
        buf
    }

    /// Deserialise from frame payload bytes.
    pub fn decode(mut payload: &[u8]) -> DbResult<WalRecord> {
        let buf = &mut payload;
        if !buf.has_remaining() {
            return Err(DbError::Corruption("empty wal record".into()));
        }
        let tag = buf.get_u8();
        let record = match tag {
            Self::T_BEGIN => WalRecord::Begin {
                txn: get_varint(buf)?,
            },
            Self::T_COMMIT => WalRecord::Commit {
                txn: get_varint(buf)?,
            },
            Self::T_ABORT => WalRecord::Abort {
                txn: get_varint(buf)?,
            },
            Self::T_INSERT => WalRecord::Insert {
                txn: get_varint(buf)?,
                table: get_varint(buf)? as u32,
                rid: get_rid(buf)?,
                bytes: get_blob(buf)?,
            },
            Self::T_DELETE => WalRecord::Delete {
                txn: get_varint(buf)?,
                table: get_varint(buf)? as u32,
                rid: get_rid(buf)?,
            },
            Self::T_UPDATE => WalRecord::Update {
                txn: get_varint(buf)?,
                table: get_varint(buf)? as u32,
                rid: get_rid(buf)?,
                bytes: get_blob(buf)?,
            },
            Self::T_CREATE_TABLE => WalRecord::CreateTable {
                name: get_string(buf)?,
                schema: get_schema(buf)?,
            },
            Self::T_CREATE_INDEX => WalRecord::CreateIndex {
                name: get_string(buf)?,
                table: get_string(buf)?,
                column: get_varint(buf)? as u32,
            },
            Self::T_DROP_TABLE => WalRecord::DropTable {
                name: get_string(buf)?,
            },
            Self::T_DROP_INDEX => WalRecord::DropIndex {
                name: get_string(buf)?,
            },
            other => {
                return Err(DbError::Corruption(format!("unknown wal tag {other}")));
            }
        };
        if buf.has_remaining() {
            return Err(DbError::Corruption("trailing bytes in wal record".into()));
        }
        Ok(record)
    }
}

enum WalBackend {
    Memory(Vec<u8>),
    File(File),
}

/// An append-only, checksummed record log.
pub struct Wal {
    backend: WalBackend,
    /// Appended frames since the last sync, for group commit.
    pending: Vec<u8>,
    /// The log file's path (durable backend only), for directory syncs.
    path: Option<std::path::PathBuf>,
    /// Failpoints for deterministic fault injection (tests / torture runs).
    injector: Option<FaultInjector>,
    /// LSN of the newest durably synced commit boundary. Frames appended
    /// since then carry `end_lsn + 1`; a successful [`Wal::sync`] with a
    /// non-empty batch advances this. Monotone for the life of the value.
    end_lsn: u64,
}

impl Wal {
    /// A volatile in-memory log (used by [`crate::db::Database::in_memory`];
    /// exercises the same code paths as the file log).
    pub fn in_memory() -> Wal {
        Wal {
            backend: WalBackend::Memory(Vec::new()),
            pending: Vec::new(),
            path: None,
            injector: None,
            end_lsn: 0,
        }
    }

    /// Open (or create) a log file at `path`.
    pub fn open(path: impl AsRef<Path>) -> DbResult<Wal> {
        Wal::open_with(path, None)
    }

    /// Open (or create) a log file at `path`, routing every durable op
    /// (sync, truncate, replay) through `injector`'s failpoints. When the
    /// file is newly created, the parent directory is fsynced so the
    /// creation itself is durable.
    pub fn open_with(path: impl AsRef<Path>, injector: Option<FaultInjector>) -> DbResult<Wal> {
        let path = path.as_ref();
        let created = !path.exists();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        if created {
            sync_dir(path)?;
        }
        Ok(Wal {
            backend: WalBackend::File(file),
            pending: Vec::new(),
            path: Some(path.to_path_buf()),
            injector,
            end_lsn: 0,
        })
    }

    /// Append a record. Buffered until [`Wal::sync`]. The frame is stamped
    /// with the in-flight batch's LSN (`end_lsn + 1`).
    pub fn append(&mut self, record: &WalRecord) {
        let payload = record.encode();
        let lsn = self.end_lsn + 1;
        let mut checked = Vec::with_capacity(8 + payload.len());
        checked.put_u64_le(lsn);
        checked.put_slice(&payload);
        self.pending.put_u32_le(payload.len() as u32);
        self.pending.put_u32_le(crc32(&checked));
        self.pending.put_slice(&checked);
    }

    /// LSN of the newest durable commit boundary.
    pub fn end_lsn(&self) -> u64 {
        self.end_lsn
    }

    /// The LSN the in-flight (unsynced) batch will commit as.
    pub fn next_lsn(&self) -> u64 {
        self.end_lsn + 1
    }

    /// Carry an LSN clock forward into this (fresh) log. A checkpoint
    /// swaps in the next generation's empty WAL; snapshot visibility
    /// requires LSNs to stay monotone for the process lifetime, so the
    /// new log inherits the old one's clock rather than restarting at 0.
    pub fn inherit_lsn(&mut self, end_lsn: u64) {
        self.end_lsn = self.end_lsn.max(end_lsn);
    }

    /// Durably write all appended records.
    ///
    /// On a transient injected fault nothing is written and the pending
    /// buffer is retained, so a retried `sync` persists the complete batch
    /// — retrying is always safe. A torn fault persists a deterministic
    /// byte prefix of the batch (a real power-loss torn tail) and then
    /// crash-stops the injector.
    pub fn sync(&mut self) -> DbResult<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        if let Some(injector) = &self.injector {
            match injector.check(FaultOp::WalSync, self.pending.len()) {
                FaultDecision::Proceed => {}
                FaultDecision::Torn { keep } => {
                    let pending = std::mem::take(&mut self.pending);
                    self.write_durable(&pending[..keep])?;
                    return Err(crash_error(FaultOp::WalSync));
                }
                // Pending is retained: the op was not performed.
                FaultDecision::Fail(e) => return Err(e),
            }
        }
        let pending = std::mem::take(&mut self.pending);
        self.write_durable(&pending)?;
        self.end_lsn += 1;
        Ok(())
    }

    /// Append `bytes` to the durable log and fsync.
    fn write_durable(&mut self, bytes: &[u8]) -> DbResult<()> {
        match &mut self.backend {
            WalBackend::Memory(buf) => buf.extend_from_slice(bytes),
            WalBackend::File(file) => {
                file.seek(SeekFrom::End(0))?;
                file.write_all(bytes)?;
                file.sync_data()?;
            }
        }
        Ok(())
    }

    /// Read every valid record from the start of the log. Stops cleanly at a
    /// torn tail: frames after the first invalid one were never acknowledged
    /// as durable, so ignoring them is exactly prefix durability.
    ///
    /// As a side effect, `end_lsn` advances to the newest LSN seen among
    /// valid frames, so LSNs assigned after recovery continue the sequence.
    pub fn replay(&mut self) -> DbResult<Vec<WalRecord>> {
        Ok(self.replay_frames()?.into_iter().map(|(_, r)| r).collect())
    }

    /// Like [`Wal::replay`], but yields each record with the LSN of the
    /// commit boundary it belongs to.
    pub fn replay_frames(&mut self) -> DbResult<Vec<(u64, WalRecord)>> {
        if let Some(injector) = &self.injector {
            match injector.check(FaultOp::WalReplay, 0) {
                FaultDecision::Proceed => {}
                FaultDecision::Torn { .. } => unreachable!("replay carries no write bytes"),
                FaultDecision::Fail(e) => return Err(e),
            }
        }
        let bytes = match &mut self.backend {
            WalBackend::Memory(buf) => buf.clone(),
            WalBackend::File(file) => {
                let mut buf = Vec::new();
                file.seek(SeekFrom::Start(0))?;
                file.read_to_end(&mut buf)?;
                buf
            }
        };
        let mut records = Vec::new();
        let mut slice = bytes.as_slice();
        while slice.len() >= 16 {
            let len = u32::from_le_bytes([slice[0], slice[1], slice[2], slice[3]]) as usize;
            let crc = u32::from_le_bytes([slice[4], slice[5], slice[6], slice[7]]);
            if slice.len() < 16 + len {
                break; // torn tail
            }
            let checked = &slice[8..16 + len];
            if crc32(checked) != crc {
                break; // torn/corrupt tail
            }
            let lsn = u64::from_le_bytes(checked[..8].try_into().unwrap());
            records.push((lsn, WalRecord::decode(&checked[8..])?));
            self.end_lsn = self.end_lsn.max(lsn);
            slice = &slice[16 + len..];
        }
        Ok(records)
    }

    /// Discard the log contents (after a checkpoint made them redundant).
    ///
    /// On a transient injected fault nothing is discarded, so a retry
    /// performs the complete truncation.
    pub fn truncate(&mut self) -> DbResult<()> {
        if let Some(injector) = &self.injector {
            match injector.check(FaultOp::WalTruncate, 0) {
                FaultDecision::Proceed => {}
                FaultDecision::Torn { .. } => unreachable!("truncate carries no write bytes"),
                FaultDecision::Fail(e) => return Err(e),
            }
        }
        self.pending.clear();
        match &mut self.backend {
            WalBackend::Memory(buf) => buf.clear(),
            WalBackend::File(file) => {
                file.set_len(0)?;
                file.sync_data()?;
                if let Some(path) = &self.path {
                    sync_dir(path)?;
                }
            }
        }
        Ok(())
    }

    /// Bytes durably in the log (diagnostics).
    pub fn len(&self) -> u64 {
        match &self.backend {
            WalBackend::Memory(buf) => buf.len() as u64,
            WalBackend::File(file) => file.metadata().map(|m| m.len()).unwrap_or(0),
        }
    }

    /// Whether the durable log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SchemaBuilder;

    #[test]
    fn crc32_matches_reference_vectors() {
        // IEEE 802.3 check value, plus lengths that exercise every
        // combination of 8-byte slices and remainder bytes.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        let bytes: Vec<u8> = (0..64u32).map(|i| (i * 37 + 11) as u8).collect();
        for len in 0..bytes.len() {
            // Byte-at-a-time oracle over the same table.
            let mut crc = 0xffff_ffffu32;
            for &b in &bytes[..len] {
                crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ b as u32) & 0xff) as usize];
            }
            assert_eq!(crc32(&bytes[..len]), !crc, "len {len}");
        }
    }

    fn sample_records() -> Vec<WalRecord> {
        let schema = SchemaBuilder::new()
            .column("id", DataType::Int)
            .nullable_column("note", DataType::Text)
            .build()
            .unwrap();
        vec![
            WalRecord::CreateTable {
                name: "t".into(),
                schema,
            },
            WalRecord::CreateIndex {
                name: "t_id".into(),
                table: "t".into(),
                column: 0,
            },
            WalRecord::Begin { txn: 1 },
            WalRecord::Insert {
                txn: 1,
                table: 0,
                rid: RowId::new(3, 4),
                bytes: vec![1, 2, 3],
            },
            WalRecord::Update {
                txn: 1,
                table: 0,
                rid: RowId::new(3, 4),
                bytes: vec![9, 9],
            },
            WalRecord::Delete {
                txn: 1,
                table: 0,
                rid: RowId::new(3, 4),
            },
            WalRecord::Commit { txn: 1 },
            WalRecord::Begin { txn: 2 },
            WalRecord::Abort { txn: 2 },
            WalRecord::DropIndex {
                name: "t_id".into(),
            },
            WalRecord::DropTable { name: "t".into() },
        ]
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard test vector.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn records_encode_decode_round_trip() {
        for record in sample_records() {
            let bytes = record.encode();
            assert_eq!(WalRecord::decode(&bytes).unwrap(), record, "{record:?}");
        }
    }

    #[test]
    fn decode_rejects_trailing_and_unknown() {
        let mut bytes = WalRecord::Begin { txn: 1 }.encode();
        bytes.push(0);
        assert!(WalRecord::decode(&bytes).is_err());
        assert!(WalRecord::decode(&[200]).is_err());
        assert!(WalRecord::decode(&[]).is_err());
    }

    #[test]
    fn memory_wal_append_sync_replay() {
        let mut wal = Wal::in_memory();
        for r in sample_records() {
            wal.append(&r);
        }
        // Nothing durable before sync.
        assert!(wal.replay().unwrap().is_empty());
        wal.sync().unwrap();
        assert_eq!(wal.replay().unwrap(), sample_records());
        wal.truncate().unwrap();
        assert!(wal.replay().unwrap().is_empty());
        assert!(wal.is_empty());
    }

    #[test]
    fn file_wal_survives_reopen_and_ignores_torn_tail() {
        let dir = std::env::temp_dir().join(format!("qpv-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            for r in sample_records() {
                wal.append(&r);
            }
            wal.sync().unwrap();
        }
        // Simulate a crash mid-append: garbage half-frame at the tail.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0x10, 0x00, 0x00, 0x00, 0xde, 0xad]).unwrap();
        }
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(wal.replay().unwrap(), sample_records());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupted_payload_ends_replay() {
        let mut wal = Wal::in_memory();
        wal.append(&WalRecord::Begin { txn: 1 });
        wal.append(&WalRecord::Commit { txn: 1 });
        wal.sync().unwrap();
        // Flip a byte in the first frame's payload.
        if let WalBackend::Memory(buf) = &mut wal.backend {
            buf[9] ^= 0xff;
        }
        // Checksum catches it; replay returns the valid prefix (none).
        assert!(wal.replay().unwrap().is_empty());
    }

    #[test]
    fn lsn_advances_per_commit_boundary_not_per_record() {
        let mut wal = Wal::in_memory();
        assert_eq!(wal.end_lsn(), 0);
        // One batch of three records = one boundary.
        wal.append(&WalRecord::Begin { txn: 1 });
        wal.append(&WalRecord::Insert {
            txn: 1,
            table: 0,
            rid: RowId::new(0, 0),
            bytes: vec![7],
        });
        wal.append(&WalRecord::Commit { txn: 1 });
        assert_eq!(wal.next_lsn(), 1);
        wal.sync().unwrap();
        assert_eq!(wal.end_lsn(), 1);
        // Empty sync is not a boundary.
        wal.sync().unwrap();
        assert_eq!(wal.end_lsn(), 1);
        // Second batch.
        wal.append(&WalRecord::Begin { txn: 2 });
        wal.append(&WalRecord::Abort { txn: 2 });
        wal.sync().unwrap();
        assert_eq!(wal.end_lsn(), 2);
        let frames = wal.replay_frames().unwrap();
        assert_eq!(
            frames.iter().map(|(lsn, _)| *lsn).collect::<Vec<_>>(),
            vec![1, 1, 1, 2, 2]
        );
    }

    #[test]
    fn replay_recovers_end_lsn() {
        let dir = std::env::temp_dir().join(format!("qpv-wal-lsn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal-lsn.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path).unwrap();
            for txn in 1..=3u64 {
                wal.append(&WalRecord::Begin { txn });
                wal.append(&WalRecord::Commit { txn });
                wal.sync().unwrap();
            }
            assert_eq!(wal.end_lsn(), 3);
        }
        let mut wal = Wal::open(&path).unwrap();
        assert_eq!(wal.end_lsn(), 0, "fresh handle before replay");
        wal.replay().unwrap();
        assert_eq!(wal.end_lsn(), 3, "replay restores the boundary counter");
        assert_eq!(wal.next_lsn(), 4);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checksum_covers_the_lsn() {
        let mut wal = Wal::in_memory();
        wal.append(&WalRecord::Begin { txn: 1 });
        wal.append(&WalRecord::Commit { txn: 1 });
        wal.sync().unwrap();
        // Flip a byte inside the first frame's LSN field (header is
        // [len:4][crc:4][lsn:8]); the checksum must catch it.
        if let WalBackend::Memory(buf) = &mut wal.backend {
            buf[10] ^= 0xff;
        }
        assert!(wal.replay().unwrap().is_empty());
    }

    #[test]
    fn truncate_preserves_lsn_monotonicity() {
        let mut wal = Wal::in_memory();
        wal.append(&WalRecord::Begin { txn: 1 });
        wal.append(&WalRecord::Commit { txn: 1 });
        wal.sync().unwrap();
        assert_eq!(wal.end_lsn(), 1);
        wal.truncate().unwrap();
        assert!(wal.is_empty());
        assert_eq!(wal.end_lsn(), 1, "checkpoint never rewinds the clock");
        wal.append(&WalRecord::Begin { txn: 2 });
        wal.append(&WalRecord::Commit { txn: 2 });
        wal.sync().unwrap();
        assert_eq!(wal.end_lsn(), 2);
    }

    #[test]
    fn schema_codec_round_trips() {
        let schema = SchemaBuilder::new()
            .column("a", DataType::Bool)
            .column("b", DataType::Float)
            .nullable_column("c", DataType::Bytes)
            .build()
            .unwrap();
        let mut buf = Vec::new();
        put_schema(&mut buf, &schema);
        let mut slice = buf.as_slice();
        assert_eq!(get_schema(&mut slice).unwrap(), schema);
        assert!(slice.is_empty());
    }
}
