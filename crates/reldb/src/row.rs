//! Rows and row identities.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// The physical address of a stored record: which page, which slot.
///
/// Row ids are stable for the life of a record (updates that fit rewrite in
/// place; oversized updates are delete+reinsert and do change the id, which
/// the heap layer reports to callers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RowId {
    /// The page holding the record.
    pub page: u64,
    /// The slot within the page.
    pub slot: u16,
}

impl RowId {
    /// Construct a row id.
    pub const fn new(page: u64, slot: u16) -> RowId {
        RowId { page, slot }
    }
}

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.page, self.slot)
    }
}

/// An in-memory tuple of values.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Row {
    /// The cell values, in schema column order.
    pub values: Vec<Value>,
}

impl Row {
    /// Construct from a vector of values.
    pub fn new(values: Vec<Value>) -> Row {
        Row { values }
    }

    /// Construct from anything iterable of values.
    pub fn from_values<I: IntoIterator<Item = Value>>(values: I) -> Row {
        Row {
            values: values.into_iter().collect(),
        }
    }

    /// Number of cells.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The cell at `idx`, if present.
    pub fn get(&self, idx: usize) -> Option<&Value> {
        self.values.get(idx)
    }

    /// A new row containing the cells at `indexes`, in that order.
    /// Out-of-range indexes yield `Null` (the binder prevents this for
    /// well-typed plans; the lenient behaviour keeps ad-hoc projection
    /// usable in tests).
    pub fn project(&self, indexes: &[usize]) -> Row {
        Row {
            values: indexes
                .iter()
                .map(|&i| self.values.get(i).cloned().unwrap_or(Value::Null))
                .collect(),
        }
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Row {
        Row::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_ids_order_by_page_then_slot() {
        assert!(RowId::new(1, 9) < RowId::new(2, 0));
        assert!(RowId::new(2, 1) < RowId::new(2, 2));
        assert_eq!(RowId::new(3, 4).to_string(), "3:4");
    }

    #[test]
    fn projection_reorders_and_fills_nulls() {
        let row = Row::from_values([Value::Int(1), Value::Text("x".into()), Value::Bool(true)]);
        let p = row.project(&[2, 0, 9]);
        assert_eq!(
            p.values,
            vec![Value::Bool(true), Value::Int(1), Value::Null]
        );
    }

    #[test]
    fn display_parenthesises() {
        let row = Row::from_values([Value::Int(1), Value::Text("x".into())]);
        assert_eq!(row.to_string(), "(1, 'x')");
    }

    #[test]
    fn accessors() {
        let row = Row::from_values([Value::Int(5)]);
        assert_eq!(row.arity(), 1);
        assert_eq!(row.get(0), Some(&Value::Int(5)));
        assert_eq!(row.get(1), None);
    }
}
