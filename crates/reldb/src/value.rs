//! Dynamically-typed cell values.
//!
//! A [`Value`] is what a table cell holds at runtime; the schema layer checks
//! values against declared [`crate::types::DataType`]s on the way in. Values
//! carry a total order (needed by B+tree keys and `ORDER BY`) that orders
//! first by type class and then within the class, with `Null` smallest —
//! matching the common SQL-engine convention for index keys.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::types::DataType;

/// A single cell value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text.
    Text(String),
    /// Raw bytes.
    Bytes(Vec<u8>),
}

impl Value {
    /// The runtime type of this value, or `None` for `Null` (NULL inhabits
    /// every type).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Bytes(_) => Some(DataType::Bytes),
        }
    }

    /// Whether this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// View as integer if the value is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// View as float, widening integers (the engine's only implicit numeric
    /// coercion, applied in comparisons and arithmetic).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// View as text if the value is `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// View as bool if the value is `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Rank of the type class in the cross-type total order.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2, // numerics compare together
            Value::Text(_) => 3,
            Value::Bytes(_) => 4,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Value) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: by type class, then within class. `Int` and `Float`
    /// share a class and compare numerically (NaN sorts greatest within
    /// floats so the order stays total).
    fn cmp(&self, other: &Value) -> Ordering {
        let rank = self.type_rank().cmp(&other.type_rank());
        if rank != Ordering::Equal {
            return rank;
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (a @ (Value::Int(_) | Value::Float(_)), b @ (Value::Int(_) | Value::Float(_))) => {
                let fa = a.as_float().expect("numeric");
                let fb = b.as_float().expect("numeric");
                fa.partial_cmp(&fb).unwrap_or_else(|| {
                    // NaN handling: NaN > everything, NaN == NaN.
                    match (fa.is_nan(), fb.is_nan()) {
                        (true, true) => Ordering::Equal,
                        (true, false) => Ordering::Greater,
                        (false, true) => Ordering::Less,
                        (false, false) => unreachable!("partial_cmp only fails on NaN"),
                    }
                })
            }
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Bytes(a), Value::Bytes(b)) => a.cmp(b),
            _ => unreachable!("equal type ranks but unhandled pair"),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.type_rank().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            // Hash numerics through their float bits so Int(2) and Float(2.0)
            // (which compare equal) hash identically.
            Value::Int(_) | Value::Float(_) => {
                let f = self.as_float().expect("numeric");
                if f == 0.0 {
                    0u64.hash(state); // +0.0 and -0.0 compare equal
                } else {
                    f.to_bits().hash(state);
                }
            }
            Value::Text(s) => s.hash(state),
            Value::Bytes(b) => b.hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "'{s}'"),
            Value::Bytes(b) => {
                f.write_str("x'")?;
                for byte in b {
                    write!(f, "{byte:02x}")?;
                }
                f.write_str("'")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::Int(v as i64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Text(v)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Value {
        Value::Bytes(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_sorts_first() {
        assert!(Value::Null < Value::Bool(false));
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::Text(String::new()));
    }

    #[test]
    fn numerics_compare_across_int_and_float() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(1.5) < Value::Int(2));
    }

    #[test]
    fn nan_keeps_the_order_total() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(nan > Value::Float(f64::INFINITY));
        assert!(Value::Int(0) < nan);
        // But still below the next type class.
        assert!(nan < Value::Text(String::new()));
    }

    #[test]
    fn equal_values_hash_equal_across_numeric_types() {
        assert_eq!(hash_of(&Value::Int(7)), hash_of(&Value::Float(7.0)));
        assert_eq!(hash_of(&Value::Float(0.0)), hash_of(&Value::Float(-0.0)));
    }

    #[test]
    fn text_and_bytes_order_lexicographically() {
        assert!(Value::Text("abc".into()) < Value::Text("abd".into()));
        assert!(Value::Bytes(vec![1, 2]) < Value::Bytes(vec![1, 3]));
        assert!(Value::Text("zzz".into()) < Value::Bytes(vec![0]));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(4).as_int(), Some(4));
        assert_eq!(Value::Int(4).as_float(), Some(4.0));
        assert_eq!(Value::Text("hi".into()).as_text(), Some("hi"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Text("hi".into()).as_int(), None);
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::Int(0).data_type(), Some(DataType::Int));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Text("x".into()).to_string(), "'x'");
        assert_eq!(Value::Bytes(vec![0xab, 0x01]).to_string(), "x'ab01'");
        assert_eq!(Value::Int(-3).to_string(), "-3");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(3u32), Value::Int(3));
        assert_eq!(Value::from("s"), Value::Text("s".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(vec![1u8]), Value::Bytes(vec![1]));
    }
}
