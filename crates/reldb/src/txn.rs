//! Coarse-grained transactions with undo-based rollback.
//!
//! The engine is single-writer: at most one transaction is open on a
//! [`crate::db::Database`] at a time (`BEGIN` inside a transaction is an
//! error). Each mutation appends an [`UndoOp`]; `ROLLBACK` applies them in
//! reverse through the normal heap code paths. Durability is the WAL's job —
//! this module only handles atomicity.

use crate::error::{DbError, DbResult};
use crate::row::RowId;

/// The inverse of one mutation, applied on rollback.
#[derive(Debug, Clone, PartialEq)]
pub enum UndoOp {
    /// An insert happened; rollback deletes `rid`.
    Insert {
        /// Table that received the row.
        table: u32,
        /// Where it landed.
        rid: RowId,
    },
    /// A delete happened; rollback re-inserts the old bytes.
    Delete {
        /// Table the row was deleted from.
        table: u32,
        /// The deleted row's encoded bytes.
        old_bytes: Vec<u8>,
    },
    /// An update happened; rollback restores the old bytes at the row's
    /// current address.
    Update {
        /// Table holding the row.
        table: u32,
        /// The row's address *after* the update (it may have moved).
        current_rid: RowId,
        /// The pre-update encoded bytes.
        old_bytes: Vec<u8>,
    },
}

/// State of one open transaction.
#[derive(Debug)]
pub struct TxnState {
    /// The transaction id, as logged to the WAL.
    pub id: u64,
    /// Undo log, oldest first.
    pub undo: Vec<UndoOp>,
}

/// Hands out transaction ids and tracks the (single) open transaction.
#[derive(Debug, Default)]
pub struct TxnManager {
    next_id: u64,
    active: Option<TxnState>,
}

impl TxnManager {
    /// A manager with no open transaction.
    pub fn new() -> TxnManager {
        TxnManager::default()
    }

    /// Start a transaction. Fails if one is already open.
    pub fn begin(&mut self) -> DbResult<u64> {
        if self.active.is_some() {
            return Err(DbError::Txn("a transaction is already open".into()));
        }
        let id = self.next_id;
        self.next_id += 1;
        self.active = Some(TxnState {
            id,
            undo: Vec::new(),
        });
        Ok(id)
    }

    /// Allocate an id for an autocommit statement (no open transaction
    /// state; the statement logs Begin/Commit around itself).
    pub fn autocommit_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// The open transaction, if any.
    pub fn active(&self) -> Option<&TxnState> {
        self.active.as_ref()
    }

    /// Whether a transaction is open.
    pub fn in_txn(&self) -> bool {
        self.active.is_some()
    }

    /// Record an undo op against the open transaction (no-op in
    /// autocommit — a failed autocommit statement surfaces its error
    /// directly and partial statements are rolled back by the caller).
    pub fn record(&mut self, op: UndoOp) {
        if let Some(txn) = &mut self.active {
            txn.undo.push(op);
        }
    }

    /// Close the open transaction for commit, returning its id.
    pub fn take_commit(&mut self) -> DbResult<u64> {
        match self.active.take() {
            Some(txn) => Ok(txn.id),
            None => Err(DbError::Txn("COMMIT without an open transaction".into())),
        }
    }

    /// Close the open transaction for rollback, returning its id and the
    /// undo ops in reverse (application) order.
    pub fn take_rollback(&mut self) -> DbResult<(u64, Vec<UndoOp>)> {
        match self.active.take() {
            Some(mut txn) => {
                txn.undo.reverse();
                Ok((txn.id, txn.undo))
            }
            None => Err(DbError::Txn("ROLLBACK without an open transaction".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_commit_cycle() {
        let mut mgr = TxnManager::new();
        assert!(!mgr.in_txn());
        let id = mgr.begin().unwrap();
        assert!(mgr.in_txn());
        assert_eq!(mgr.active().unwrap().id, id);
        assert_eq!(mgr.take_commit().unwrap(), id);
        assert!(!mgr.in_txn());
    }

    #[test]
    fn nested_begin_rejected() {
        let mut mgr = TxnManager::new();
        mgr.begin().unwrap();
        assert!(mgr.begin().is_err());
    }

    #[test]
    fn commit_and_rollback_require_open_txn() {
        let mut mgr = TxnManager::new();
        assert!(mgr.take_commit().is_err());
        assert!(mgr.take_rollback().is_err());
    }

    #[test]
    fn ids_are_unique_across_modes() {
        let mut mgr = TxnManager::new();
        let a = mgr.autocommit_id();
        let b = mgr.begin().unwrap();
        mgr.take_commit().unwrap();
        let c = mgr.autocommit_id();
        assert!(a < b && b < c);
    }

    #[test]
    fn rollback_returns_undo_in_reverse() {
        let mut mgr = TxnManager::new();
        mgr.begin().unwrap();
        mgr.record(UndoOp::Insert {
            table: 0,
            rid: RowId::new(0, 0),
        });
        mgr.record(UndoOp::Insert {
            table: 0,
            rid: RowId::new(0, 1),
        });
        let (_, undo) = mgr.take_rollback().unwrap();
        assert_eq!(
            undo,
            vec![
                UndoOp::Insert {
                    table: 0,
                    rid: RowId::new(0, 1)
                },
                UndoOp::Insert {
                    table: 0,
                    rid: RowId::new(0, 0)
                },
            ]
        );
    }

    #[test]
    fn record_outside_txn_is_noop() {
        let mut mgr = TxnManager::new();
        mgr.record(UndoOp::Delete {
            table: 0,
            old_bytes: vec![1],
        });
        assert!(!mgr.in_txn());
    }
}
