//! A from-scratch B+tree secondary index.
//!
//! Maps [`Value`] keys to sets of [`RowId`]s (indexes are non-unique).
//! Internal nodes hold separator keys; all entries live in leaves, which are
//! linked left-to-right so range scans stream without re-descending.
//!
//! Nodes live in an arena and reference each other by
//! index, which keeps the structure safe-Rust simple and cache-friendly.
//!
//! Deletion removes entries but does not rebalance: underfull nodes are left
//! in place (their slack is reused by later inserts). This "lazy deletion"
//! keeps the implementation compact and is the behaviour several production
//! engines shipped with for years; the index is rebuilt from the heap at
//! recovery anyway (see [`crate::db::Database`]), which re-packs it.

use std::ops::Bound;

use crate::row::RowId;
use crate::value::Value;

/// Maximum keys per node before a split.
const ORDER: usize = 32;

#[derive(Debug)]
enum Node {
    Leaf {
        keys: Vec<Value>,
        /// Row ids per key, kept sorted and deduplicated.
        postings: Vec<Vec<RowId>>,
        next: Option<usize>,
    },
    Internal {
        /// `keys[i]` separates `children[i]` (strictly less) from
        /// `children[i+1]` (greater or equal).
        keys: Vec<Value>,
        children: Vec<usize>,
    },
}

/// A non-unique ordered index from values to row ids.
#[derive(Debug)]
pub struct BTreeIndex {
    nodes: Vec<Node>,
    root: usize,
    entries: usize,
}

impl Default for BTreeIndex {
    fn default() -> Self {
        Self::new()
    }
}

impl BTreeIndex {
    /// An empty index.
    pub fn new() -> BTreeIndex {
        BTreeIndex {
            nodes: vec![Node::Leaf {
                keys: Vec::new(),
                postings: Vec::new(),
                next: None,
            }],
            root: 0,
            entries: 0,
        }
    }

    /// Number of `(key, row id)` entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Insert an entry. Returns `false` (and changes nothing) if the exact
    /// `(key, rid)` pair is already present.
    pub fn insert(&mut self, key: Value, rid: RowId) -> bool {
        match self.insert_rec(self.root, key, rid) {
            InsertOutcome::Duplicate => false,
            InsertOutcome::Done => {
                self.entries += 1;
                true
            }
            InsertOutcome::Split(sep, right) => {
                let new_root = Node::Internal {
                    keys: vec![sep],
                    children: vec![self.root, right],
                };
                self.nodes.push(new_root);
                self.root = self.nodes.len() - 1;
                self.entries += 1;
                true
            }
        }
    }

    /// Remove an entry. Returns whether the pair was present.
    pub fn remove(&mut self, key: &Value, rid: RowId) -> bool {
        let leaf = self.find_leaf(key);
        let Node::Leaf { keys, postings, .. } = &mut self.nodes[leaf] else {
            unreachable!("find_leaf returns leaves");
        };
        let Ok(pos) = keys.binary_search(key) else {
            return false;
        };
        let Ok(vpos) = postings[pos].binary_search(&rid) else {
            return false;
        };
        postings[pos].remove(vpos);
        if postings[pos].is_empty() {
            keys.remove(pos);
            postings.remove(pos);
        }
        self.entries -= 1;
        true
    }

    /// The row ids stored under `key` (empty if absent), in `RowId` order.
    pub fn get(&self, key: &Value) -> &[RowId] {
        let leaf = self.find_leaf(key);
        let Node::Leaf { keys, postings, .. } = &self.nodes[leaf] else {
            unreachable!("find_leaf returns leaves");
        };
        match keys.binary_search(key) {
            Ok(pos) => &postings[pos],
            Err(_) => &[],
        }
    }

    /// Whether any entry exists under `key`.
    pub fn contains_key(&self, key: &Value) -> bool {
        !self.get(key).is_empty()
    }

    /// Stream `(key, rid)` pairs with keys in `[lo, hi]` per the given
    /// bounds, in key order.
    pub fn range(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> RangeIter<'_> {
        let (leaf, idx) = match lo {
            Bound::Unbounded => (self.leftmost_leaf(), 0),
            Bound::Included(k) | Bound::Excluded(k) => {
                let leaf = self.find_leaf(k);
                let Node::Leaf { keys, .. } = &self.nodes[leaf] else {
                    unreachable!()
                };
                let idx = match keys.binary_search(k) {
                    Ok(pos) => {
                        if matches!(lo, Bound::Excluded(_)) {
                            pos + 1
                        } else {
                            pos
                        }
                    }
                    Err(pos) => pos,
                };
                (leaf, idx)
            }
        };
        RangeIter {
            tree: self,
            leaf: Some(leaf),
            key_idx: idx,
            posting_idx: 0,
            hi: match hi {
                Bound::Unbounded => Bound::Unbounded,
                Bound::Included(v) => Bound::Included(v.clone()),
                Bound::Excluded(v) => Bound::Excluded(v.clone()),
            },
        }
    }

    /// All entries in key order.
    pub fn iter(&self) -> RangeIter<'_> {
        self.range(Bound::Unbounded, Bound::Unbounded)
    }

    /// Depth of the tree (1 = just a root leaf). Exposed for tests and the
    /// storage benchmarks.
    pub fn depth(&self) -> usize {
        let mut depth = 1;
        let mut node = self.root;
        while let Node::Internal { children, .. } = &self.nodes[node] {
            node = children[0];
            depth += 1;
        }
        depth
    }

    fn find_leaf(&self, key: &Value) -> usize {
        let mut node = self.root;
        loop {
            match &self.nodes[node] {
                Node::Leaf { .. } => return node,
                Node::Internal { keys, children } => {
                    // First separator strictly greater than key → that child.
                    let idx = keys.partition_point(|k| k <= key);
                    node = children[idx];
                }
            }
        }
    }

    fn leftmost_leaf(&self) -> usize {
        let mut node = self.root;
        while let Node::Internal { children, .. } = &self.nodes[node] {
            node = children[0];
        }
        node
    }

    fn insert_rec(&mut self, node: usize, key: Value, rid: RowId) -> InsertOutcome {
        match &mut self.nodes[node] {
            Node::Leaf { keys, postings, .. } => {
                match keys.binary_search(&key) {
                    Ok(pos) => match postings[pos].binary_search(&rid) {
                        Ok(_) => return InsertOutcome::Duplicate,
                        Err(vpos) => {
                            postings[pos].insert(vpos, rid);
                            return InsertOutcome::Done;
                        }
                    },
                    Err(pos) => {
                        keys.insert(pos, key);
                        postings.insert(pos, vec![rid]);
                    }
                }
                if let Node::Leaf { keys, .. } = &self.nodes[node] {
                    if keys.len() <= ORDER {
                        return InsertOutcome::Done;
                    }
                }
                self.split_leaf(node)
            }
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|k| *k <= key);
                let child = children[idx];
                match self.insert_rec(child, key, rid) {
                    InsertOutcome::Split(sep, right) => {
                        let Node::Internal { keys, children } = &mut self.nodes[node] else {
                            unreachable!()
                        };
                        keys.insert(idx, sep);
                        children.insert(idx + 1, right);
                        if keys.len() <= ORDER {
                            InsertOutcome::Done
                        } else {
                            self.split_internal(node)
                        }
                    }
                    other => other,
                }
            }
        }
    }

    fn split_leaf(&mut self, node: usize) -> InsertOutcome {
        let new_id = self.nodes.len();
        let Node::Leaf {
            keys,
            postings,
            next,
        } = &mut self.nodes[node]
        else {
            unreachable!()
        };
        let mid = keys.len() / 2;
        let right_keys = keys.split_off(mid);
        let right_postings = postings.split_off(mid);
        let sep = right_keys[0].clone();
        let right = Node::Leaf {
            keys: right_keys,
            postings: right_postings,
            next: next.take(),
        };
        *next = Some(new_id);
        self.nodes.push(right);
        InsertOutcome::Split(sep, new_id)
    }

    fn split_internal(&mut self, node: usize) -> InsertOutcome {
        let new_id = self.nodes.len();
        let Node::Internal { keys, children } = &mut self.nodes[node] else {
            unreachable!()
        };
        let mid = keys.len() / 2;
        // The median key moves up; it separates the two halves.
        let right_keys = keys.split_off(mid + 1);
        let sep = keys.pop().expect("mid < len");
        let right_children = children.split_off(mid + 1);
        let right = Node::Internal {
            keys: right_keys,
            children: right_children,
        };
        self.nodes.push(right);
        InsertOutcome::Split(sep, new_id)
    }
}

enum InsertOutcome {
    Duplicate,
    Done,
    Split(Value, usize),
}

/// Streaming iterator over a key range; see [`BTreeIndex::range`].
pub struct RangeIter<'a> {
    tree: &'a BTreeIndex,
    leaf: Option<usize>,
    key_idx: usize,
    posting_idx: usize,
    hi: Bound<Value>,
}

impl<'a> Iterator for RangeIter<'a> {
    type Item = (&'a Value, RowId);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let leaf = self.leaf?;
            let Node::Leaf {
                keys,
                postings,
                next,
            } = &self.tree.nodes[leaf]
            else {
                unreachable!("leaf chain only contains leaves");
            };
            if self.key_idx >= keys.len() {
                self.leaf = *next;
                self.key_idx = 0;
                self.posting_idx = 0;
                continue;
            }
            let key = &keys[self.key_idx];
            let in_range = match &self.hi {
                Bound::Unbounded => true,
                Bound::Included(h) => key <= h,
                Bound::Excluded(h) => key < h,
            };
            if !in_range {
                self.leaf = None;
                return None;
            }
            let posting = &postings[self.key_idx];
            if self.posting_idx < posting.len() {
                let rid = posting[self.posting_idx];
                self.posting_idx += 1;
                return Some((key, rid));
            }
            self.key_idx += 1;
            self.posting_idx = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rid(n: u64) -> RowId {
        RowId::new(n / 16, (n % 16) as u16)
    }

    #[test]
    fn empty_index() {
        let idx = BTreeIndex::new();
        assert!(idx.is_empty());
        assert_eq!(idx.get(&Value::Int(1)), &[]);
        assert_eq!(idx.iter().count(), 0);
        assert_eq!(idx.depth(), 1);
    }

    #[test]
    fn point_lookup_after_many_inserts() {
        let mut idx = BTreeIndex::new();
        for i in 0..1000i64 {
            assert!(idx.insert(Value::Int(i), rid(i as u64)));
        }
        assert_eq!(idx.len(), 1000);
        assert!(idx.depth() > 1, "1000 keys must have split the root");
        for i in 0..1000i64 {
            assert_eq!(idx.get(&Value::Int(i)), &[rid(i as u64)], "key {i}");
        }
        assert!(idx.get(&Value::Int(-1)).is_empty());
        assert!(idx.get(&Value::Int(1000)).is_empty());
    }

    #[test]
    fn duplicate_pairs_rejected_but_multi_rid_per_key_allowed() {
        let mut idx = BTreeIndex::new();
        assert!(idx.insert(Value::Int(5), rid(1)));
        assert!(idx.insert(Value::Int(5), rid(2)));
        assert!(!idx.insert(Value::Int(5), rid(1)));
        assert_eq!(idx.get(&Value::Int(5)), &[rid(1), rid(2)]);
        assert_eq!(idx.len(), 2);
    }

    #[test]
    fn remove_entries_and_keys() {
        let mut idx = BTreeIndex::new();
        idx.insert(Value::Int(5), rid(1));
        idx.insert(Value::Int(5), rid(2));
        assert!(idx.remove(&Value::Int(5), rid(1)));
        assert!(!idx.remove(&Value::Int(5), rid(1)));
        assert_eq!(idx.get(&Value::Int(5)), &[rid(2)]);
        assert!(idx.remove(&Value::Int(5), rid(2)));
        assert!(!idx.contains_key(&Value::Int(5)));
        assert!(idx.is_empty());
        assert!(!idx.remove(&Value::Int(99), rid(1)));
    }

    #[test]
    fn range_scans_in_key_order() {
        let mut idx = BTreeIndex::new();
        // Insert in reverse to exercise ordering.
        for i in (0..500i64).rev() {
            idx.insert(Value::Int(i), rid(i as u64));
        }
        let all: Vec<i64> = idx.iter().map(|(k, _)| k.as_int().unwrap()).collect();
        assert_eq!(all, (0..500).collect::<Vec<_>>());

        let mid: Vec<i64> = idx
            .range(
                Bound::Included(&Value::Int(100)),
                Bound::Excluded(&Value::Int(110)),
            )
            .map(|(k, _)| k.as_int().unwrap())
            .collect();
        assert_eq!(mid, (100..110).collect::<Vec<_>>());

        let excl: Vec<i64> = idx
            .range(
                Bound::Excluded(&Value::Int(100)),
                Bound::Included(&Value::Int(103)),
            )
            .map(|(k, _)| k.as_int().unwrap())
            .collect();
        assert_eq!(excl, vec![101, 102, 103]);
    }

    #[test]
    fn range_with_absent_bounds() {
        let mut idx = BTreeIndex::new();
        for i in [10i64, 20, 30] {
            idx.insert(Value::Int(i), rid(i as u64));
        }
        // Bounds that fall between keys.
        let found: Vec<i64> = idx
            .range(
                Bound::Included(&Value::Int(15)),
                Bound::Included(&Value::Int(25)),
            )
            .map(|(k, _)| k.as_int().unwrap())
            .collect();
        assert_eq!(found, vec![20]);
        // Empty range.
        assert_eq!(
            idx.range(
                Bound::Included(&Value::Int(21)),
                Bound::Excluded(&Value::Int(22)),
            )
            .count(),
            0
        );
    }

    #[test]
    fn text_keys_work() {
        let mut idx = BTreeIndex::new();
        for (i, name) in ["delta", "alpha", "charlie", "bravo"].iter().enumerate() {
            idx.insert(Value::Text(name.to_string()), rid(i as u64));
        }
        let names: Vec<&str> = idx.iter().map(|(k, _)| k.as_text().unwrap()).collect();
        assert_eq!(names, vec!["alpha", "bravo", "charlie", "delta"]);
    }

    proptest! {
        /// The index agrees with a BTreeMap shadow model under random
        /// insert/remove interleavings, for lookups and full ordered scans.
        #[test]
        fn prop_matches_shadow_model(
            ops in proptest::collection::vec((any::<bool>(), -50i64..50, 0u64..20), 1..600)
        ) {
            use std::collections::BTreeMap;
            let mut idx = BTreeIndex::new();
            let mut model: BTreeMap<i64, Vec<RowId>> = BTreeMap::new();
            for (is_insert, key, r) in ops {
                let value = Value::Int(key);
                let r = rid(r);
                if is_insert {
                    let inserted = idx.insert(value, r);
                    let posting = model.entry(key).or_default();
                    match posting.binary_search(&r) {
                        Ok(_) => prop_assert!(!inserted),
                        Err(pos) => {
                            prop_assert!(inserted);
                            posting.insert(pos, r);
                        }
                    }
                } else {
                    let removed = idx.remove(&value, r);
                    let model_had = model.get_mut(&key).map(|p| {
                        if let Ok(pos) = p.binary_search(&r) { p.remove(pos); true } else { false }
                    }).unwrap_or(false);
                    if model.get(&key).is_some_and(|p| p.is_empty()) {
                        model.remove(&key);
                    }
                    prop_assert_eq!(removed, model_had);
                }
            }
            // Point lookups agree.
            for (key, posting) in &model {
                prop_assert_eq!(idx.get(&Value::Int(*key)), &posting[..]);
            }
            // Ordered scan agrees.
            let scanned: Vec<(i64, RowId)> =
                idx.iter().map(|(k, r)| (k.as_int().unwrap(), r)).collect();
            let expected: Vec<(i64, RowId)> = model
                .iter()
                .flat_map(|(k, p)| p.iter().map(move |r| (*k, *r)))
                .collect();
            prop_assert_eq!(idx.len(), expected.len());
            prop_assert_eq!(scanned, expected);
        }
    }
}
