//! Query execution: a small tree of relational operators.
//!
//! A bound [`Plan`] is executed against an [`ExecContext`] (catalog + buffer
//! pool + live indexes). Scans stream from the storage layer; the operators
//! above them (filter, project, aggregate, sort, limit) are applied as the
//! rows flow upward. Results are materialised into a [`ResultSet`] — the
//! engine's workloads (privacy audits, experiment harnesses) consume whole
//! results, so there is no need for a suspended-iterator API across the
//! buffer pool's `&mut` boundary.

use std::collections::HashMap;
use std::ops::Bound;

use crate::btree::BTreeIndex;
use crate::buffer::BufferPool;
use crate::catalog::{Catalog, IndexId, TableId};
use crate::encoding::decode_row;
use crate::error::{DbError, DbResult};
use crate::expr::Expr;
use crate::row::Row;
use crate::value::Value;

/// Everything execution needs from the database.
pub struct ExecContext<'a> {
    /// Schema objects.
    pub catalog: &'a Catalog,
    /// Page access.
    pub pool: &'a mut BufferPool,
    /// Live index structures by id.
    pub indexes: &'a HashMap<IndexId, BTreeIndex>,
}

/// Sort key: an expression and a direction.
#[derive(Debug, Clone)]
pub struct SortKey {
    /// Evaluated per row to produce the key.
    pub expr: Expr,
    /// `true` for `DESC`.
    pub descending: bool,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` / `COUNT(expr)` (non-null count).
    Count,
    /// `SUM(expr)`.
    Sum,
    /// `MIN(expr)`.
    Min,
    /// `MAX(expr)`.
    Max,
    /// `AVG(expr)` (always a float).
    Avg,
}

/// One aggregate in an [`Plan::Aggregate`] node.
#[derive(Debug, Clone)]
pub struct AggExpr {
    /// The function.
    pub func: AggFunc,
    /// The argument; `None` means `COUNT(*)`.
    pub arg: Option<Expr>,
}

/// A bound, executable query plan.
#[derive(Debug, Clone)]
pub enum Plan {
    /// Full scan of a table heap.
    SeqScan {
        /// The scanned table.
        table: TableId,
    },
    /// Ordered scan of a key range through a B+tree index.
    IndexScan {
        /// The scanned table.
        table: TableId,
        /// The index providing the row ids.
        index: IndexId,
        /// Lower key bound.
        lo: Bound<Value>,
        /// Upper key bound.
        hi: Bound<Value>,
    },
    /// Keep rows matching a predicate.
    Filter {
        /// Upstream operator.
        input: Box<Plan>,
        /// Must evaluate to `TRUE` for a row to pass.
        predicate: Expr,
    },
    /// Compute output expressions per row.
    Project {
        /// Upstream operator.
        input: Box<Plan>,
        /// Output expressions.
        exprs: Vec<Expr>,
        /// Output column names (same length as `exprs`).
        names: Vec<String>,
    },
    /// Group and aggregate.
    Aggregate {
        /// Upstream operator.
        input: Box<Plan>,
        /// Grouping expressions (empty = one global group).
        group_by: Vec<Expr>,
        /// Aggregates computed per group.
        aggregates: Vec<AggExpr>,
        /// Output names: group columns then aggregate columns.
        names: Vec<String>,
    },
    /// Order rows.
    Sort {
        /// Upstream operator.
        input: Box<Plan>,
        /// Ordering keys, most significant first.
        keys: Vec<SortKey>,
    },
    /// Skip `offset` rows, emit at most `limit`.
    Limit {
        /// Upstream operator.
        input: Box<Plan>,
        /// Rows to skip.
        offset: usize,
        /// Max rows to emit (`None` = unlimited).
        limit: Option<usize>,
    },
    /// Remove duplicate rows, keeping first occurrences in order
    /// (`SELECT DISTINCT`).
    Distinct {
        /// Upstream operator.
        input: Box<Plan>,
    },
    /// Inner equi-join: build a hash table on the right side's key, probe
    /// with the left. Output rows are `left ++ right`.
    HashJoin {
        /// Left (probe) input.
        left: Box<Plan>,
        /// Right (build) input.
        right: Box<Plan>,
        /// Key expression over left rows.
        left_key: Expr,
        /// Key expression over right rows.
        right_key: Expr,
    },
    /// Inner join with an arbitrary condition, evaluated over the
    /// concatenated `left ++ right` row.
    NestedLoopJoin {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
        /// Join condition over the combined row.
        on: Expr,
    },
}

/// A materialised query result.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// The rows.
    pub rows: Vec<Row>,
}

impl ResultSet {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the result is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The single value of a single-row, single-column result (the common
    /// shape for `SELECT COUNT(*) ...`).
    pub fn scalar(&self) -> DbResult<&Value> {
        if self.rows.len() == 1 && self.rows[0].arity() == 1 {
            Ok(&self.rows[0].values[0])
        } else {
            Err(DbError::Eval(format!(
                "expected a 1x1 result, got {}x{}",
                self.rows.len(),
                self.rows.first().map(Row::arity).unwrap_or(0)
            )))
        }
    }
}

/// Execute a plan to completion.
pub fn execute(plan: &Plan, ctx: &mut ExecContext<'_>) -> DbResult<ResultSet> {
    match plan {
        Plan::SeqScan { table } => {
            let meta = ctx
                .catalog
                .table_by_id(*table)
                .ok_or_else(|| DbError::Catalog(format!("no table with id {}", table.0)))?;
            let columns = column_names(ctx.catalog, *table)?;
            let mut cursor = meta.heap.cursor();
            let mut rows = Vec::new();
            while let Some((_, bytes)) = cursor.next(ctx.pool)? {
                rows.push(decode_row(&bytes)?);
            }
            Ok(ResultSet { columns, rows })
        }
        Plan::IndexScan {
            table,
            index,
            lo,
            hi,
        } => {
            let meta = ctx
                .catalog
                .table_by_id(*table)
                .ok_or_else(|| DbError::Catalog(format!("no table with id {}", table.0)))?;
            let columns = column_names(ctx.catalog, *table)?;
            let btree = ctx.indexes.get(index).ok_or_else(|| {
                DbError::Catalog(format!("no index structure for id {}", index.0))
            })?;
            let rids: Vec<_> = btree
                .range(bound_ref(lo), bound_ref(hi))
                .map(|(_, rid)| rid)
                .collect();
            let mut rows = Vec::with_capacity(rids.len());
            for rid in rids {
                let bytes = meta.heap.get(ctx.pool, rid)?;
                rows.push(decode_row(&bytes)?);
            }
            Ok(ResultSet { columns, rows })
        }
        Plan::Filter { input, predicate } => {
            let mut upstream = execute(input, ctx)?;
            let mut kept = Vec::with_capacity(upstream.rows.len());
            for row in upstream.rows.drain(..) {
                if predicate.matches(&row)? {
                    kept.push(row);
                }
            }
            upstream.rows = kept;
            Ok(upstream)
        }
        Plan::Project {
            input,
            exprs,
            names,
        } => {
            let upstream = execute(input, ctx)?;
            let mut rows = Vec::with_capacity(upstream.rows.len());
            for row in &upstream.rows {
                let values = exprs
                    .iter()
                    .map(|e| e.eval(row))
                    .collect::<DbResult<Vec<Value>>>()?;
                rows.push(Row::new(values));
            }
            Ok(ResultSet {
                columns: names.clone(),
                rows,
            })
        }
        Plan::Aggregate {
            input,
            group_by,
            aggregates,
            names,
        } => {
            let upstream = execute(input, ctx)?;
            aggregate(&upstream.rows, group_by, aggregates, names)
        }
        Plan::Sort { input, keys } => {
            let mut upstream = execute(input, ctx)?;
            // Precompute sort keys so evaluation errors surface before
            // sorting (and each key is computed once).
            let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(upstream.rows.len());
            for row in upstream.rows.drain(..) {
                let k = keys
                    .iter()
                    .map(|sk| sk.expr.eval(&row))
                    .collect::<DbResult<Vec<Value>>>()?;
                keyed.push((k, row));
            }
            keyed.sort_by(|(ka, _), (kb, _)| {
                for (i, sk) in keys.iter().enumerate() {
                    let ord = ka[i].cmp(&kb[i]);
                    let ord = if sk.descending { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            upstream.rows = keyed.into_iter().map(|(_, row)| row).collect();
            Ok(upstream)
        }
        Plan::Limit {
            input,
            offset,
            limit,
        } => {
            let mut upstream = execute(input, ctx)?;
            let end = limit
                .map(|l| (*offset + l).min(upstream.rows.len()))
                .unwrap_or(upstream.rows.len());
            let start = (*offset).min(upstream.rows.len());
            upstream.rows = upstream.rows.drain(start..end.max(start)).collect();
            Ok(upstream)
        }
        Plan::Distinct { input } => {
            let mut upstream = execute(input, ctx)?;
            let mut seen = std::collections::HashSet::with_capacity(upstream.rows.len());
            upstream.rows.retain(|row| seen.insert(row.clone()));
            Ok(upstream)
        }
        Plan::HashJoin {
            left,
            right,
            left_key,
            right_key,
        } => {
            let left_rs = execute(left, ctx)?;
            let right_rs = execute(right, ctx)?;
            // Build on the right side. NULL keys never join (SQL equality).
            let mut table: HashMap<Value, Vec<&Row>> = HashMap::new();
            for row in &right_rs.rows {
                let key = right_key.eval(row)?;
                if !key.is_null() {
                    table.entry(key).or_default().push(row);
                }
            }
            let mut rows = Vec::new();
            for lrow in &left_rs.rows {
                let key = left_key.eval(lrow)?;
                if key.is_null() {
                    continue;
                }
                if let Some(matches) = table.get(&key) {
                    for rrow in matches {
                        let mut values = lrow.values.clone();
                        values.extend(rrow.values.iter().cloned());
                        rows.push(Row::new(values));
                    }
                }
            }
            Ok(ResultSet {
                columns: joined_columns(&left_rs, &right_rs),
                rows,
            })
        }
        Plan::NestedLoopJoin { left, right, on } => {
            let left_rs = execute(left, ctx)?;
            let right_rs = execute(right, ctx)?;
            let mut rows = Vec::new();
            for lrow in &left_rs.rows {
                for rrow in &right_rs.rows {
                    let mut values = lrow.values.clone();
                    values.extend(rrow.values.iter().cloned());
                    let combined = Row::new(values);
                    if on.matches(&combined)? {
                        rows.push(combined);
                    }
                }
            }
            Ok(ResultSet {
                columns: joined_columns(&left_rs, &right_rs),
                rows,
            })
        }
    }
}

fn joined_columns(left: &ResultSet, right: &ResultSet) -> Vec<String> {
    left.columns
        .iter()
        .chain(right.columns.iter())
        .cloned()
        .collect()
}

fn column_names(catalog: &Catalog, table: TableId) -> DbResult<Vec<String>> {
    let meta = catalog
        .table_by_id(table)
        .ok_or_else(|| DbError::Catalog(format!("no table with id {}", table.0)))?;
    Ok(meta
        .schema
        .columns()
        .iter()
        .map(|c| c.name.clone())
        .collect())
}

fn bound_ref(b: &Bound<Value>) -> Bound<&Value> {
    match b {
        Bound::Unbounded => Bound::Unbounded,
        Bound::Included(v) => Bound::Included(v),
        Bound::Excluded(v) => Bound::Excluded(v),
    }
}

/// Running state for one aggregate within one group.
#[derive(Debug, Clone)]
struct AggState {
    count: u64,
    sum_int: Option<i64>,
    sum_float: f64,
    saw_float: bool,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggState {
    fn new() -> AggState {
        AggState {
            count: 0,
            sum_int: Some(0),
            sum_float: 0.0,
            saw_float: false,
            min: None,
            max: None,
        }
    }

    fn accumulate(&mut self, v: &Value) -> DbResult<()> {
        if v.is_null() {
            return Ok(()); // SQL aggregates skip NULLs
        }
        self.count += 1;
        match v {
            Value::Int(i) => {
                self.sum_int = self.sum_int.and_then(|s| s.checked_add(*i));
                self.sum_float += *i as f64;
            }
            Value::Float(f) => {
                self.saw_float = true;
                self.sum_float += f;
            }
            _ => {
                // Non-numeric: only MIN/MAX/COUNT are meaningful; SUM/AVG
                // will error at finalisation if requested.
                self.sum_int = None;
            }
        }
        match &self.min {
            Some(m) if v >= m => {}
            _ => self.min = Some(v.clone()),
        }
        match &self.max {
            Some(m) if v <= m => {}
            _ => self.max = Some(v.clone()),
        }
        Ok(())
    }

    fn finalise(&self, func: AggFunc, starred: bool, group_size: u64) -> DbResult<Value> {
        match func {
            AggFunc::Count => Ok(Value::Int(if starred {
                group_size as i64
            } else {
                self.count as i64
            })),
            AggFunc::Sum => {
                if self.count == 0 {
                    return Ok(Value::Null);
                }
                if self.saw_float {
                    Ok(Value::Float(self.sum_float))
                } else {
                    self.sum_int.map(Value::Int).ok_or_else(|| {
                        DbError::Eval("SUM over non-numeric or overflowing values".into())
                    })
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    return Ok(Value::Null);
                }
                if !self.saw_float && self.sum_int.is_none() {
                    return Err(DbError::Eval("AVG over non-numeric values".into()));
                }
                Ok(Value::Float(self.sum_float / self.count as f64))
            }
            AggFunc::Min => Ok(self.min.clone().unwrap_or(Value::Null)),
            AggFunc::Max => Ok(self.max.clone().unwrap_or(Value::Null)),
        }
    }
}

fn aggregate(
    rows: &[Row],
    group_by: &[Expr],
    aggregates: &[AggExpr],
    names: &[String],
) -> DbResult<ResultSet> {
    // Group key → (group values, per-aggregate state, group row count).
    // Keys are ordered so output order is deterministic.
    let mut groups: std::collections::BTreeMap<Vec<Value>, (Vec<AggState>, u64)> =
        std::collections::BTreeMap::new();
    for row in rows {
        let key = group_by
            .iter()
            .map(|e| e.eval(row))
            .collect::<DbResult<Vec<Value>>>()?;
        let entry = groups
            .entry(key)
            .or_insert_with(|| (vec![AggState::new(); aggregates.len()], 0));
        entry.1 += 1;
        for (agg, state) in aggregates.iter().zip(entry.0.iter_mut()) {
            if let Some(arg) = &agg.arg {
                state.accumulate(&arg.eval(row)?)?;
            }
        }
    }
    // A global aggregate over zero rows still yields one row.
    if groups.is_empty() && group_by.is_empty() {
        groups.insert(Vec::new(), (vec![AggState::new(); aggregates.len()], 0));
    }
    let mut out = Vec::with_capacity(groups.len());
    for (key, (states, group_size)) in groups {
        let mut values = key;
        for (agg, state) in aggregates.iter().zip(states.iter()) {
            values.push(state.finalise(agg.func, agg.arg.is_none(), group_size)?);
        }
        out.push(Row::new(values));
    }
    Ok(ResultSet {
        columns: names.to_vec(),
        rows: out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemStore;
    use crate::encoding::encode_row;
    use crate::heap::TableHeap;
    use crate::schema::SchemaBuilder;
    use crate::types::DataType;

    /// Build a catalog+pool+index holding one `people(id, name, age)` table
    /// with an index on `age`.
    struct Fixture {
        catalog: Catalog,
        pool: BufferPool,
        indexes: HashMap<IndexId, BTreeIndex>,
        table: TableId,
        index: IndexId,
    }

    fn fixture(rows: &[(i64, &str, Option<i64>)]) -> Fixture {
        let mut pool = BufferPool::new(Box::new(MemStore::new()), 16);
        let schema = SchemaBuilder::new()
            .column("id", DataType::Int)
            .column("name", DataType::Text)
            .nullable_column("age", DataType::Int)
            .build()
            .unwrap();
        let mut heap = TableHeap::create(&mut pool).unwrap();
        let mut btree = BTreeIndex::new();
        for (id, name, age) in rows {
            let row = Row::from_values([
                Value::Int(*id),
                Value::Text(name.to_string()),
                age.map(Value::Int).unwrap_or(Value::Null),
            ]);
            let rid = heap.insert(&mut pool, &encode_row(&row)).unwrap();
            btree.insert(row.values[2].clone(), rid);
        }
        let mut catalog = Catalog::new();
        let table = catalog.create_table("people", schema, heap).unwrap();
        let index = catalog.create_index("people_age", table, 2).unwrap();
        let mut indexes = HashMap::new();
        indexes.insert(index, btree);
        Fixture {
            catalog,
            pool,
            indexes,
            table,
            index,
        }
    }

    fn run(fx: &mut Fixture, plan: &Plan) -> ResultSet {
        let mut ctx = ExecContext {
            catalog: &fx.catalog,
            pool: &mut fx.pool,
            indexes: &fx.indexes,
        };
        execute(plan, &mut ctx).unwrap()
    }

    fn people() -> Vec<(i64, &'static str, Option<i64>)> {
        vec![
            (1, "alice", Some(34)),
            (2, "bob", Some(28)),
            (3, "carol", Some(41)),
            (4, "dan", None),
            (5, "erin", Some(28)),
        ]
    }

    #[test]
    fn seq_scan_returns_all_rows_with_names() {
        let mut fx = fixture(&people());
        let table = fx.table;
        let rs = run(&mut fx, &Plan::SeqScan { table });
        assert_eq!(rs.columns, vec!["id", "name", "age"]);
        assert_eq!(rs.len(), 5);
    }

    #[test]
    fn filter_applies_predicate() {
        let mut fx = fixture(&people());
        let plan = Plan::Filter {
            input: Box::new(Plan::SeqScan { table: fx.table }),
            predicate: Expr::col(2).eq(Expr::lit(28)),
        };
        let rs = run(&mut fx, &plan);
        assert_eq!(rs.len(), 2);
        // NULL age row is filtered out, not errored.
        let plan = Plan::Filter {
            input: Box::new(Plan::SeqScan { table: fx.table }),
            predicate: Expr::col(2).gt(Expr::lit(0)),
        };
        assert_eq!(run(&mut fx, &plan).len(), 4);
    }

    #[test]
    fn project_computes_expressions() {
        let mut fx = fixture(&people());
        let plan = Plan::Project {
            input: Box::new(Plan::SeqScan { table: fx.table }),
            exprs: vec![
                Expr::col(1),
                Expr::Binary(
                    crate::expr::BinOp::Add,
                    Box::new(Expr::col(0)),
                    Box::new(Expr::lit(100)),
                ),
            ],
            names: vec!["name".into(), "id_plus".into()],
        };
        let rs = run(&mut fx, &plan);
        assert_eq!(rs.columns, vec!["name", "id_plus"]);
        assert_eq!(rs.rows[0].values[1], Value::Int(101));
    }

    #[test]
    fn index_scan_ranges() {
        let mut fx = fixture(&people());
        let plan = Plan::IndexScan {
            table: fx.table,
            index: fx.index,
            lo: Bound::Included(Value::Int(28)),
            hi: Bound::Included(Value::Int(34)),
        };
        let rs = run(&mut fx, &plan);
        // ages 28, 28, 34 — in key order.
        assert_eq!(rs.len(), 3);
        let ages: Vec<i64> = rs
            .rows
            .iter()
            .map(|r| r.values[2].as_int().unwrap())
            .collect();
        assert_eq!(ages, vec![28, 28, 34]);
    }

    #[test]
    fn sort_orders_rows_with_nulls_first() {
        let mut fx = fixture(&people());
        let plan = Plan::Sort {
            input: Box::new(Plan::SeqScan { table: fx.table }),
            keys: vec![SortKey {
                expr: Expr::col(2),
                descending: false,
            }],
        };
        let rs = run(&mut fx, &plan);
        let first = &rs.rows[0].values[2];
        assert!(first.is_null(), "NULL sorts first ascending");
        let plan = Plan::Sort {
            input: Box::new(Plan::SeqScan { table: fx.table }),
            keys: vec![SortKey {
                expr: Expr::col(2),
                descending: true,
            }],
        };
        let rs = run(&mut fx, &plan);
        assert_eq!(rs.rows[0].values[2], Value::Int(41));
    }

    #[test]
    fn limit_and_offset() {
        let mut fx = fixture(&people());
        let table = fx.table;
        let base = move || Box::new(Plan::SeqScan { table });
        let rs = run(
            &mut fx,
            &Plan::Limit {
                input: base(),
                offset: 1,
                limit: Some(2),
            },
        );
        assert_eq!(rs.len(), 2);
        assert_eq!(rs.rows[0].values[0], Value::Int(2));
        // Offset beyond the end.
        let rs = run(
            &mut fx,
            &Plan::Limit {
                input: base(),
                offset: 99,
                limit: Some(2),
            },
        );
        assert!(rs.is_empty());
        // Limit beyond the end.
        let rs = run(
            &mut fx,
            &Plan::Limit {
                input: base(),
                offset: 0,
                limit: Some(99),
            },
        );
        assert_eq!(rs.len(), 5);
    }

    #[test]
    fn global_aggregates() {
        let mut fx = fixture(&people());
        let plan = Plan::Aggregate {
            input: Box::new(Plan::SeqScan { table: fx.table }),
            group_by: vec![],
            aggregates: vec![
                AggExpr {
                    func: AggFunc::Count,
                    arg: None,
                },
                AggExpr {
                    func: AggFunc::Count,
                    arg: Some(Expr::col(2)),
                },
                AggExpr {
                    func: AggFunc::Sum,
                    arg: Some(Expr::col(2)),
                },
                AggExpr {
                    func: AggFunc::Min,
                    arg: Some(Expr::col(2)),
                },
                AggExpr {
                    func: AggFunc::Max,
                    arg: Some(Expr::col(2)),
                },
                AggExpr {
                    func: AggFunc::Avg,
                    arg: Some(Expr::col(2)),
                },
            ],
            names: vec![
                "n".into(),
                "n_age".into(),
                "sum".into(),
                "min".into(),
                "max".into(),
                "avg".into(),
            ],
        };
        let rs = run(&mut fx, &plan);
        assert_eq!(rs.len(), 1);
        let v = &rs.rows[0].values;
        assert_eq!(v[0], Value::Int(5)); // COUNT(*) counts the NULL row
        assert_eq!(v[1], Value::Int(4)); // COUNT(age) does not
        assert_eq!(v[2], Value::Int(34 + 28 + 41 + 28));
        assert_eq!(v[3], Value::Int(28));
        assert_eq!(v[4], Value::Int(41));
        assert_eq!(v[5], Value::Float((34 + 28 + 41 + 28) as f64 / 4.0));
    }

    #[test]
    fn aggregate_over_empty_input_yields_one_row() {
        let mut fx = fixture(&[]);
        let plan = Plan::Aggregate {
            input: Box::new(Plan::SeqScan { table: fx.table }),
            group_by: vec![],
            aggregates: vec![
                AggExpr {
                    func: AggFunc::Count,
                    arg: None,
                },
                AggExpr {
                    func: AggFunc::Sum,
                    arg: Some(Expr::col(2)),
                },
            ],
            names: vec!["n".into(), "s".into()],
        };
        let rs = run(&mut fx, &plan);
        assert_eq!(rs.len(), 1);
        assert_eq!(rs.rows[0].values[0], Value::Int(0));
        assert_eq!(rs.rows[0].values[1], Value::Null);
        assert!(rs.scalar().is_err());
    }

    #[test]
    fn group_by_partitions() {
        let mut fx = fixture(&people());
        let plan = Plan::Aggregate {
            input: Box::new(Plan::SeqScan { table: fx.table }),
            group_by: vec![Expr::col(2)],
            aggregates: vec![AggExpr {
                func: AggFunc::Count,
                arg: None,
            }],
            names: vec!["age".into(), "n".into()],
        };
        let rs = run(&mut fx, &plan);
        // Groups: NULL, 28, 34, 41 (BTreeMap order: Null first).
        assert_eq!(rs.len(), 4);
        assert_eq!(rs.rows[0].values, vec![Value::Null, Value::Int(1)]);
        assert_eq!(rs.rows[1].values, vec![Value::Int(28), Value::Int(2)]);
    }

    #[test]
    fn scalar_helper() {
        let mut fx = fixture(&people());
        let plan = Plan::Aggregate {
            input: Box::new(Plan::SeqScan { table: fx.table }),
            group_by: vec![],
            aggregates: vec![AggExpr {
                func: AggFunc::Count,
                arg: None,
            }],
            names: vec!["n".into()],
        };
        let rs = run(&mut fx, &plan);
        assert_eq!(rs.scalar().unwrap(), &Value::Int(5));
    }

    #[test]
    fn sum_over_text_errors() {
        let mut fx = fixture(&people());
        let plan = Plan::Aggregate {
            input: Box::new(Plan::SeqScan { table: fx.table }),
            group_by: vec![],
            aggregates: vec![AggExpr {
                func: AggFunc::Sum,
                arg: Some(Expr::col(1)),
            }],
            names: vec!["s".into()],
        };
        let mut ctx = ExecContext {
            catalog: &fx.catalog,
            pool: &mut fx.pool,
            indexes: &fx.indexes,
        };
        assert!(execute(&plan, &mut ctx).is_err());
    }
}
