//! Expression trees evaluated against rows.
//!
//! Expressions follow SQL's three-valued logic: comparisons and arithmetic
//! involving `NULL` yield `NULL`; `AND`/`OR` use Kleene logic; a `WHERE`
//! predicate keeps a row only when it evaluates to `TRUE` (not `NULL`).

use std::fmt;

use crate::error::{DbError, DbResult};
use crate::row::Row;
use crate::value::Value;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

impl BinOp {
    fn symbol(self) -> &'static str {
        match self {
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `NOT`
    Not,
    /// `-`
    Neg,
}

/// An expression over the columns of a single row.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// The value of column `i` of the input row.
    Column(usize),
    /// A constant.
    Literal(Value),
    /// `op expr`
    Unary(UnaryOp, Box<Expr>),
    /// `left op right`
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `expr IS NULL` (or `IS NOT NULL` when `negated`).
    IsNull {
        /// The tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern` with SQL semantics: `%` matches any run
    /// (including empty), `_` matches exactly one character. Matching is
    /// case-sensitive; a NULL operand yields NULL.
    Like {
        /// The tested expression (must evaluate to text or NULL).
        expr: Box<Expr>,
        /// The pattern, with `%`/`_` wildcards.
        pattern: String,
        /// True for `NOT LIKE`.
        negated: bool,
    },
}

impl Expr {
    /// Column reference.
    pub fn col(i: usize) -> Expr {
        Expr::Column(i)
    }

    /// Literal constant.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// `self = other`
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Eq, Box::new(self), Box::new(other))
    }

    /// `self <> other`
    pub fn ne(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Ne, Box::new(self), Box::new(other))
    }

    /// `self < other`
    pub fn lt(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Lt, Box::new(self), Box::new(other))
    }

    /// `self <= other`
    pub fn le(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Le, Box::new(self), Box::new(other))
    }

    /// `self > other`
    pub fn gt(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Gt, Box::new(self), Box::new(other))
    }

    /// `self >= other`
    pub fn ge(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Ge, Box::new(self), Box::new(other))
    }

    /// `self AND other`
    pub fn and(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::And, Box::new(self), Box::new(other))
    }

    /// `self OR other`
    pub fn or(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Or, Box::new(self), Box::new(other))
    }

    /// `NOT self`
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Unary(UnaryOp::Not, Box::new(self))
    }

    /// `self IS NULL`
    pub fn is_null(self) -> Expr {
        Expr::IsNull {
            expr: Box::new(self),
            negated: false,
        }
    }

    /// `self IS NOT NULL`
    pub fn is_not_null(self) -> Expr {
        Expr::IsNull {
            expr: Box::new(self),
            negated: true,
        }
    }

    /// Evaluate against a row.
    pub fn eval(&self, row: &Row) -> DbResult<Value> {
        match self {
            Expr::Column(i) => row
                .get(*i)
                .cloned()
                .ok_or_else(|| DbError::Eval(format!("column index {i} out of range"))),
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Unary(op, inner) => {
                let v = inner.eval(row)?;
                match op {
                    UnaryOp::Not => match v {
                        Value::Null => Ok(Value::Null),
                        Value::Bool(b) => Ok(Value::Bool(!b)),
                        other => Err(DbError::Eval(format!("NOT applied to {other}"))),
                    },
                    UnaryOp::Neg => match v {
                        Value::Null => Ok(Value::Null),
                        Value::Int(i) => i
                            .checked_neg()
                            .map(Value::Int)
                            .ok_or_else(|| DbError::Eval("integer overflow in negation".into())),
                        Value::Float(f) => Ok(Value::Float(-f)),
                        other => Err(DbError::Eval(format!("negation applied to {other}"))),
                    },
                }
            }
            Expr::Binary(op, l, r) => self.eval_binary(*op, l, r, row),
            Expr::IsNull { expr, negated } => {
                let v = expr.eval(row)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => match expr.eval(row)? {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => Ok(Value::Bool(like_match(&s, pattern) != *negated)),
                other => Err(DbError::Eval(format!("LIKE applied to {other}"))),
            },
        }
    }

    /// Evaluate as a predicate: `true` only for `Bool(true)` (`NULL` filters
    /// the row out, matching SQL `WHERE`).
    pub fn matches(&self, row: &Row) -> DbResult<bool> {
        match self.eval(row)? {
            Value::Bool(b) => Ok(b),
            Value::Null => Ok(false),
            other => Err(DbError::Eval(format!(
                "predicate evaluated to non-boolean {other}"
            ))),
        }
    }

    fn eval_binary(&self, op: BinOp, l: &Expr, r: &Expr, row: &Row) -> DbResult<Value> {
        // Kleene AND/OR must short-circuit around NULLs specially.
        if matches!(op, BinOp::And | BinOp::Or) {
            let lv = l.eval(row)?;
            let rv = r.eval(row)?;
            return kleene(op, lv, rv);
        }
        let lv = l.eval(row)?;
        let rv = r.eval(row)?;
        if lv.is_null() || rv.is_null() {
            return Ok(Value::Null);
        }
        match op {
            BinOp::Eq => Ok(Value::Bool(compare(&lv, &rv)? == std::cmp::Ordering::Equal)),
            BinOp::Ne => Ok(Value::Bool(compare(&lv, &rv)? != std::cmp::Ordering::Equal)),
            BinOp::Lt => Ok(Value::Bool(compare(&lv, &rv)? == std::cmp::Ordering::Less)),
            BinOp::Le => Ok(Value::Bool(
                compare(&lv, &rv)? != std::cmp::Ordering::Greater,
            )),
            BinOp::Gt => Ok(Value::Bool(
                compare(&lv, &rv)? == std::cmp::Ordering::Greater,
            )),
            BinOp::Ge => Ok(Value::Bool(compare(&lv, &rv)? != std::cmp::Ordering::Less)),
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                arithmetic(op, &lv, &rv)
            }
            BinOp::And | BinOp::Or => unreachable!("handled above"),
        }
    }
}

/// SQL `LIKE` matching: `%` = any run, `_` = one character. Iterative
/// two-pointer algorithm with backtracking to the last `%` — linear in
/// practice, no recursion, no regex dependency.
pub fn like_match(text: &str, pattern: &str) -> bool {
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut ti, mut pi) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pattern idx after %, text idx)
    while ti < t.len() {
        // The wildcard test must precede the literal test: a literal '%'
        // in the *text* would otherwise consume the pattern's wildcard.
        if pi < p.len() && p[pi] == '%' {
            star = Some((pi + 1, ti));
            pi += 1;
        } else if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            ti += 1;
            pi += 1;
        } else if let Some((sp, st)) = star {
            // Backtrack: let the last % swallow one more character.
            pi = sp;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

/// SQL comparison: only like-typed values (or the numeric pair) compare.
fn compare(l: &Value, r: &Value) -> DbResult<std::cmp::Ordering> {
    let comparable = matches!(
        (l, r),
        (Value::Bool(_), Value::Bool(_))
            | (
                Value::Int(_) | Value::Float(_),
                Value::Int(_) | Value::Float(_)
            )
            | (Value::Text(_), Value::Text(_))
            | (Value::Bytes(_), Value::Bytes(_))
    );
    if !comparable {
        return Err(DbError::Eval(format!("cannot compare {l} with {r}")));
    }
    Ok(l.cmp(r))
}

fn kleene(op: BinOp, l: Value, r: Value) -> DbResult<Value> {
    let as_tristate = |v: &Value| -> DbResult<Option<bool>> {
        match v {
            Value::Null => Ok(None),
            Value::Bool(b) => Ok(Some(*b)),
            other => Err(DbError::Eval(format!("{} applied to {other}", op.symbol()))),
        }
    };
    let lt = as_tristate(&l)?;
    let rt = as_tristate(&r)?;
    let out = match op {
        BinOp::And => match (lt, rt) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        BinOp::Or => match (lt, rt) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        _ => unreachable!(),
    };
    Ok(out.map(Value::Bool).unwrap_or(Value::Null))
}

fn arithmetic(op: BinOp, l: &Value, r: &Value) -> DbResult<Value> {
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => {
            let out = match op {
                BinOp::Add => a.checked_add(*b),
                BinOp::Sub => a.checked_sub(*b),
                BinOp::Mul => a.checked_mul(*b),
                BinOp::Div => {
                    if *b == 0 {
                        return Err(DbError::Eval("division by zero".into()));
                    }
                    a.checked_div(*b)
                }
                BinOp::Mod => {
                    if *b == 0 {
                        return Err(DbError::Eval("modulo by zero".into()));
                    }
                    a.checked_rem(*b)
                }
                _ => unreachable!(),
            };
            out.map(Value::Int)
                .ok_or_else(|| DbError::Eval("integer overflow".into()))
        }
        (Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_)) => {
            let a = l.as_float().expect("numeric");
            let b = r.as_float().expect("numeric");
            let out = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return Err(DbError::Eval("division by zero".into()));
                    }
                    a / b
                }
                BinOp::Mod => {
                    if b == 0.0 {
                        return Err(DbError::Eval("modulo by zero".into()));
                    }
                    a % b
                }
                _ => unreachable!(),
            };
            Ok(Value::Float(out))
        }
        (Value::Text(a), Value::Text(b)) if op == BinOp::Add => {
            let mut s = String::with_capacity(a.len() + b.len());
            s.push_str(a);
            s.push_str(b);
            Ok(Value::Text(s))
        }
        _ => Err(DbError::Eval(format!(
            "{} not defined for {l} and {r}",
            op.symbol()
        ))),
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(i) => write!(f, "#{i}"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Unary(UnaryOp::Not, e) => write!(f, "(NOT {e})"),
            Expr::Unary(UnaryOp::Neg, e) => write!(f, "(-{e})"),
            Expr::Binary(op, l, r) => write!(f, "({l} {} {r})", op.symbol()),
            Expr::IsNull { expr, negated } => {
                write!(f, "({expr} IS {}NULL)", if *negated { "NOT " } else { "" })
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "({expr} {}LIKE '{pattern}')",
                if *negated { "NOT " } else { "" }
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Row {
        Row::from_values([
            Value::Int(10),
            Value::Text("bob".into()),
            Value::Null,
            Value::Float(2.5),
            Value::Bool(true),
        ])
    }

    #[test]
    fn column_and_literal() {
        assert_eq!(Expr::col(0).eval(&row()).unwrap(), Value::Int(10));
        assert_eq!(Expr::lit(7).eval(&row()).unwrap(), Value::Int(7));
        assert!(Expr::col(99).eval(&row()).is_err());
    }

    #[test]
    fn comparisons() {
        let r = row();
        assert_eq!(
            Expr::col(0).gt(Expr::lit(5)).eval(&r).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            Expr::col(1).eq(Expr::lit("bob")).eval(&r).unwrap(),
            Value::Bool(true)
        );
        // Mixed numeric comparison.
        assert_eq!(
            Expr::col(3).lt(Expr::lit(3)).eval(&r).unwrap(),
            Value::Bool(true)
        );
        // Incomparable types error.
        assert!(Expr::col(0).eq(Expr::lit("x")).eval(&r).is_err());
    }

    #[test]
    fn null_propagates_through_comparisons_and_arithmetic() {
        let r = row();
        assert_eq!(Expr::col(2).eq(Expr::lit(1)).eval(&r).unwrap(), Value::Null);
        assert_eq!(Expr::col(2).gt(Expr::col(0)).eval(&r).unwrap(), Value::Null);
        assert_eq!(
            Expr::Binary(BinOp::Add, Box::new(Expr::col(2)), Box::new(Expr::lit(1)))
                .eval(&r)
                .unwrap(),
            Value::Null
        );
    }

    #[test]
    fn kleene_logic() {
        let t = || Expr::lit(true);
        let f = || Expr::lit(false);
        let n = || Expr::lit(Value::Null);
        let r = row();
        // FALSE AND NULL = FALSE; TRUE AND NULL = NULL.
        assert_eq!(f().and(n()).eval(&r).unwrap(), Value::Bool(false));
        assert_eq!(t().and(n()).eval(&r).unwrap(), Value::Null);
        // TRUE OR NULL = TRUE; FALSE OR NULL = NULL.
        assert_eq!(t().or(n()).eval(&r).unwrap(), Value::Bool(true));
        assert_eq!(f().or(n()).eval(&r).unwrap(), Value::Null);
        // NOT NULL = NULL.
        assert_eq!(n().not().eval(&r).unwrap(), Value::Null);
        assert_eq!(t().not().eval(&r).unwrap(), Value::Bool(false));
    }

    #[test]
    fn matches_treats_null_as_false() {
        let r = row();
        assert!(!Expr::col(2).eq(Expr::lit(1)).matches(&r).unwrap());
        assert!(Expr::col(4).matches(&r).unwrap());
        assert!(Expr::col(0).matches(&r).is_err()); // non-boolean predicate
    }

    #[test]
    fn is_null_tests() {
        let r = row();
        assert_eq!(Expr::col(2).is_null().eval(&r).unwrap(), Value::Bool(true));
        assert_eq!(Expr::col(0).is_null().eval(&r).unwrap(), Value::Bool(false));
        assert_eq!(
            Expr::col(2).is_not_null().eval(&r).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn arithmetic_int_float_text() {
        let r = row();
        let add = |a: Expr, b: Expr| Expr::Binary(BinOp::Add, Box::new(a), Box::new(b));
        assert_eq!(
            add(Expr::lit(2), Expr::lit(3)).eval(&r).unwrap(),
            Value::Int(5)
        );
        assert_eq!(
            add(Expr::lit(2), Expr::lit(0.5)).eval(&r).unwrap(),
            Value::Float(2.5)
        );
        assert_eq!(
            add(Expr::lit("foo"), Expr::lit("bar")).eval(&r).unwrap(),
            Value::Text("foobar".into())
        );
        let div = |a: Expr, b: Expr| Expr::Binary(BinOp::Div, Box::new(a), Box::new(b));
        assert_eq!(
            div(Expr::lit(7), Expr::lit(2)).eval(&r).unwrap(),
            Value::Int(3)
        );
        assert!(div(Expr::lit(7), Expr::lit(0)).eval(&r).is_err());
        let m = |a: Expr, b: Expr| Expr::Binary(BinOp::Mod, Box::new(a), Box::new(b));
        assert_eq!(
            m(Expr::lit(7), Expr::lit(2)).eval(&r).unwrap(),
            Value::Int(1)
        );
    }

    #[test]
    fn overflow_is_an_error_not_a_wrap() {
        let r = row();
        let mul = Expr::Binary(
            BinOp::Mul,
            Box::new(Expr::lit(i64::MAX)),
            Box::new(Expr::lit(2)),
        );
        assert!(mul.eval(&r).is_err());
        let neg = Expr::Unary(UnaryOp::Neg, Box::new(Expr::lit(i64::MIN)));
        assert!(neg.eval(&r).is_err());
    }

    #[test]
    fn like_matching_semantics() {
        assert!(like_match("hello", "hello"));
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%o"));
        assert!(like_match("hello", "%ell%"));
        assert!(like_match("hello", "h_llo"));
        assert!(like_match("hello", "%"));
        assert!(like_match("", "%"));
        assert!(like_match("abc", "a%c"));
        assert!(like_match("ac", "a%c"));
        assert!(like_match("a%c-literal-ish", "a%h"));
        assert!(!like_match("hello", "h"));
        assert!(!like_match("hello", "hello!"));
        assert!(!like_match("", "_"));
        assert!(!like_match("Hello", "hello")); // case-sensitive
                                                // Multiple wildcards with backtracking.
        assert!(like_match("mississippi", "%iss%pi"));
        assert!(!like_match("mississippi", "%iss%x"));
    }

    #[test]
    fn like_expression_eval() {
        let r = row();
        let like = |pat: &str, neg: bool| Expr::Like {
            expr: Box::new(Expr::col(1)),
            pattern: pat.to_string(),
            negated: neg,
        };
        assert_eq!(like("b%", false).eval(&r).unwrap(), Value::Bool(true));
        assert_eq!(like("b%", true).eval(&r).unwrap(), Value::Bool(false));
        assert_eq!(like("z%", false).eval(&r).unwrap(), Value::Bool(false));
        // NULL operand → NULL.
        let null_like = Expr::Like {
            expr: Box::new(Expr::col(2)),
            pattern: "%".into(),
            negated: false,
        };
        assert_eq!(null_like.eval(&r).unwrap(), Value::Null);
        // Non-text operand errors.
        let bad = Expr::Like {
            expr: Box::new(Expr::col(0)),
            pattern: "%".into(),
            negated: false,
        };
        assert!(bad.eval(&r).is_err());
    }

    #[test]
    fn display_round_trippable_shape() {
        let e = Expr::col(0)
            .gt(Expr::lit(5))
            .and(Expr::col(1).eq(Expr::lit("x")));
        assert_eq!(e.to_string(), "((#0 > 5) AND (#1 = 'x'))");
    }
}
