//! Declared column types and the value/type compatibility rules.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::error::DbError;
use crate::value::Value;

/// The engine's column types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 text.
    Text,
    /// Raw bytes.
    Bytes,
}

impl DataType {
    /// Whether `value` may be stored in a column of this type.
    ///
    /// `Null` is accepted by every type (nullability is a separate,
    /// per-column property checked by the schema). An `Int` is accepted by a
    /// `Float` column (widening); nothing else coerces implicitly.
    pub fn accepts(self, value: &Value) -> bool {
        match value.data_type() {
            None => true, // NULL
            Some(vt) => vt == self || (self == DataType::Float && vt == DataType::Int),
        }
    }

    /// Coerce `value` for storage in this type, applying the Int→Float
    /// widening. Errors on any other mismatch.
    pub fn coerce(self, value: Value) -> Result<Value, DbError> {
        if value.is_null() {
            return Ok(value);
        }
        match (self, &value) {
            (DataType::Float, Value::Int(i)) => Ok(Value::Float(*i as f64)),
            _ if self.accepts(&value) => Ok(value),
            _ => Err(DbError::TypeMismatch {
                expected: self.to_string(),
                found: value
                    .data_type()
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "NULL".to_string()),
            }),
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DataType::Bool => "BOOL",
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Bytes => "BYTES",
        };
        f.write_str(name)
    }
}

impl FromStr for DataType {
    type Err = DbError;

    /// Parses the SQL spellings (case-insensitive), including the common
    /// aliases `INTEGER`, `BIGINT`, `DOUBLE`, `REAL`, `VARCHAR`, `STRING`,
    /// `BOOLEAN`, and `BLOB`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "BOOL" | "BOOLEAN" => Ok(DataType::Bool),
            "INT" | "INTEGER" | "BIGINT" => Ok(DataType::Int),
            "FLOAT" | "DOUBLE" | "REAL" => Ok(DataType::Float),
            "TEXT" | "VARCHAR" | "STRING" => Ok(DataType::Text),
            "BYTES" | "BLOB" => Ok(DataType::Bytes),
            other => Err(DbError::SqlParse(format!("unknown type {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_type_accepts_null() {
        for t in [
            DataType::Bool,
            DataType::Int,
            DataType::Float,
            DataType::Text,
            DataType::Bytes,
        ] {
            assert!(t.accepts(&Value::Null));
            assert_eq!(t.coerce(Value::Null).unwrap(), Value::Null);
        }
    }

    #[test]
    fn exact_matches_accepted() {
        assert!(DataType::Int.accepts(&Value::Int(1)));
        assert!(DataType::Text.accepts(&Value::Text("x".into())));
        assert!(!DataType::Int.accepts(&Value::Text("x".into())));
        assert!(!DataType::Bool.accepts(&Value::Int(1)));
    }

    #[test]
    fn int_widens_to_float_only() {
        assert!(DataType::Float.accepts(&Value::Int(3)));
        assert_eq!(
            DataType::Float.coerce(Value::Int(3)).unwrap(),
            Value::Float(3.0)
        );
        // No float→int narrowing.
        assert!(!DataType::Int.accepts(&Value::Float(3.0)));
        assert!(DataType::Int.coerce(Value::Float(3.0)).is_err());
    }

    #[test]
    fn parse_aliases() {
        assert_eq!("integer".parse::<DataType>().unwrap(), DataType::Int);
        assert_eq!("VARCHAR".parse::<DataType>().unwrap(), DataType::Text);
        assert_eq!("double".parse::<DataType>().unwrap(), DataType::Float);
        assert_eq!("blob".parse::<DataType>().unwrap(), DataType::Bytes);
        assert!("DECIMAL".parse::<DataType>().is_err());
    }

    #[test]
    fn coerce_error_names_both_types() {
        let err = DataType::Bool.coerce(Value::Text("t".into())).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("BOOL") && msg.contains("TEXT"), "{msg}");
    }
}
