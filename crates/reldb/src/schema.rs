//! Table schemas: named, typed, nullability-checked columns.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{DbError, DbResult};
use crate::row::Row;
use crate::types::DataType;
use crate::value::Value;

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Column name (case-sensitive in the engine; the SQL layer lowercases
    /// unquoted identifiers before they get here).
    pub name: String,
    /// Declared type.
    pub dtype: DataType,
    /// Whether NULL is storable.
    pub nullable: bool,
}

impl Column {
    /// A non-nullable column.
    pub fn new(name: impl Into<String>, dtype: DataType) -> Column {
        Column {
            name: name.into(),
            dtype,
            nullable: false,
        }
    }

    /// A nullable column.
    pub fn nullable(name: impl Into<String>, dtype: DataType) -> Column {
        Column {
            name: name.into(),
            dtype,
            nullable: true,
        }
    }
}

impl fmt::Display for Column {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.dtype)?;
        if !self.nullable {
            f.write_str(" NOT NULL")?;
        }
        Ok(())
    }
}

/// An ordered list of columns with unique names.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build a schema, rejecting duplicate column names and empty schemas.
    pub fn new(columns: Vec<Column>) -> DbResult<Schema> {
        if columns.is_empty() {
            return Err(DbError::Schema("a table needs at least one column".into()));
        }
        for (i, col) in columns.iter().enumerate() {
            if col.name.is_empty() {
                return Err(DbError::Schema("empty column name".into()));
            }
            if columns[..i].iter().any(|c| c.name == col.name) {
                return Err(DbError::Schema(format!("duplicate column {:?}", col.name)));
            }
        }
        Ok(Schema { columns })
    }

    /// The columns in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The index of the named column.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// The column at `idx`.
    pub fn column(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx)
    }

    /// Look up a column by name or fail with a schema error.
    pub fn require(&self, name: &str) -> DbResult<usize> {
        self.index_of(name)
            .ok_or_else(|| DbError::Schema(format!("unknown column {name:?}")))
    }

    /// Validate and coerce a row for storage under this schema: checks
    /// arity, per-column type (with Int→Float widening), and nullability.
    pub fn check_row(&self, row: Row) -> DbResult<Row> {
        if row.values.len() != self.arity() {
            return Err(DbError::Schema(format!(
                "expected {} values, got {}",
                self.arity(),
                row.values.len()
            )));
        }
        let mut out = Vec::with_capacity(row.values.len());
        for (col, value) in self.columns.iter().zip(row.values) {
            if value.is_null() && !col.nullable {
                return Err(DbError::Schema(format!(
                    "column {:?} is NOT NULL but got NULL",
                    col.name
                )));
            }
            out.push(col.dtype.coerce(value).map_err(|e| match e {
                DbError::TypeMismatch { expected, found } => DbError::TypeMismatch {
                    expected: format!("{} for column {:?}", expected, col.name),
                    found,
                },
                other => other,
            })?);
        }
        Ok(Row::new(out))
    }

    /// A projected schema containing the given column indexes.
    pub fn project(&self, indexes: &[usize]) -> DbResult<Schema> {
        let mut columns = Vec::with_capacity(indexes.len());
        for &i in indexes {
            let col = self
                .column(i)
                .ok_or_else(|| DbError::Schema(format!("column index {i} out of range")))?;
            columns.push(col.clone());
        }
        Schema::new(columns)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, col) in self.columns.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{col}")?;
        }
        f.write_str(")")
    }
}

/// Convenience builder used heavily in tests and the privacy layer.
///
/// ```
/// use qpv_reldb::schema::SchemaBuilder;
/// use qpv_reldb::types::DataType;
///
/// let schema = SchemaBuilder::new()
///     .column("id", DataType::Int)
///     .nullable_column("nickname", DataType::Text)
///     .build()
///     .unwrap();
/// assert_eq!(schema.arity(), 2);
/// ```
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    columns: Vec<Column>,
}

impl SchemaBuilder {
    /// Start an empty builder.
    pub fn new() -> SchemaBuilder {
        SchemaBuilder::default()
    }

    /// Add a NOT NULL column.
    pub fn column(mut self, name: impl Into<String>, dtype: DataType) -> SchemaBuilder {
        self.columns.push(Column::new(name, dtype));
        self
    }

    /// Add a nullable column.
    pub fn nullable_column(mut self, name: impl Into<String>, dtype: DataType) -> SchemaBuilder {
        self.columns.push(Column::nullable(name, dtype));
        self
    }

    /// Finish, validating the column set.
    pub fn build(self) -> DbResult<Schema> {
        Schema::new(self.columns)
    }
}

/// Check a literal value against a column (used by the binder for
/// constant-folding errors before execution).
pub fn check_value(col: &Column, value: &Value) -> DbResult<()> {
    if value.is_null() {
        if col.nullable {
            return Ok(());
        }
        return Err(DbError::Schema(format!(
            "column {:?} is NOT NULL but got NULL",
            col.name
        )));
    }
    if col.dtype.accepts(value) {
        Ok(())
    } else {
        Err(DbError::TypeMismatch {
            expected: col.dtype.to_string(),
            found: value
                .data_type()
                .map(|t| t.to_string())
                .unwrap_or_else(|| "NULL".into()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        SchemaBuilder::new()
            .column("id", DataType::Int)
            .column("name", DataType::Text)
            .nullable_column("weight", DataType::Float)
            .build()
            .unwrap()
    }

    #[test]
    fn lookup_by_name_and_index() {
        let s = sample();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("name"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert!(s.require("weight").is_ok());
        assert!(s.require("nope").is_err());
        assert_eq!(s.column(0).unwrap().name, "id");
        assert!(s.column(9).is_none());
    }

    #[test]
    fn duplicate_and_empty_names_rejected() {
        assert!(Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("a", DataType::Text),
        ])
        .is_err());
        assert!(Schema::new(vec![Column::new("", DataType::Int)]).is_err());
        assert!(Schema::new(vec![]).is_err());
    }

    #[test]
    fn check_row_validates_arity_types_nullability() {
        let s = sample();
        // Good row, with Int→Float widening on `weight`.
        let row = s
            .check_row(Row::from_values([
                Value::Int(1),
                Value::Text("Alice".into()),
                Value::Int(60),
            ]))
            .unwrap();
        assert_eq!(row.values[2], Value::Float(60.0));
        // NULL in nullable column: fine.
        assert!(s
            .check_row(Row::from_values([
                Value::Int(1),
                Value::Text("A".into()),
                Value::Null,
            ]))
            .is_ok());
        // NULL in NOT NULL column: rejected.
        assert!(s
            .check_row(Row::from_values([
                Value::Null,
                Value::Text("A".into()),
                Value::Null,
            ]))
            .is_err());
        // Wrong arity.
        assert!(s.check_row(Row::from_values([Value::Int(1)])).is_err());
        // Wrong type; error mentions the column.
        let err = s
            .check_row(Row::from_values([
                Value::Text("oops".into()),
                Value::Text("A".into()),
                Value::Null,
            ]))
            .unwrap_err();
        assert!(err.to_string().contains("id"), "{err}");
    }

    #[test]
    fn project_selects_and_validates() {
        let s = sample();
        let p = s.project(&[2, 0]).unwrap();
        assert_eq!(p.columns()[0].name, "weight");
        assert_eq!(p.columns()[1].name, "id");
        assert!(s.project(&[7]).is_err());
    }

    #[test]
    fn display_looks_like_ddl() {
        let s = sample();
        let shown = s.to_string();
        assert!(shown.contains("id INT NOT NULL"), "{shown}");
        assert!(shown.contains("weight FLOAT"), "{shown}");
    }

    #[test]
    fn check_value_respects_nullability() {
        let col = Column::new("x", DataType::Int);
        assert!(check_value(&col, &Value::Int(1)).is_ok());
        assert!(check_value(&col, &Value::Null).is_err());
        let ncol = Column::nullable("x", DataType::Int);
        assert!(check_value(&ncol, &Value::Null).is_ok());
        assert!(check_value(&ncol, &Value::Text("s".into())).is_err());
    }
}
