//! # qpv-reldb
//!
//! A small, from-scratch relational storage engine. It is the substrate the
//! privacy-violation model of *Quantifying Privacy Violations* runs over: the
//! paper targets "relational database systems", so the reproduction stores
//! provider data, privacy preferences, and policy metadata in real tables
//! with real storage, rather than in ad-hoc in-memory vectors.
//!
//! The engine is deliberately classical:
//!
//! * [`value`] / [`types`] / [`schema`] / [`row`] — the relational data
//!   model: dynamically-typed [`value::Value`]s checked against a typed
//!   [`schema::Schema`].
//! * [`encoding`] — compact binary row serialisation.
//! * [`page`] — 4 KiB slotted pages.
//! * [`disk`] — a page-granular file manager.
//! * [`buffer`] — an LRU buffer pool with pin counts over the disk manager.
//! * [`wal`] — a physical write-ahead log with checksummed records and
//!   crash recovery (redo on open).
//! * [`fault`] — deterministic fault injection: every page/WAL I/O op is a
//!   failpoint driven by a clock-free, seed-deterministic
//!   [`fault::FaultPlan`] (used by the crash-torture suite).
//! * [`heap`] — table heaps: unordered record storage across page chains.
//! * [`btree`] — a from-scratch B+tree secondary index with linked leaves
//!   for range scans.
//! * [`catalog`] — table and index metadata.
//! * [`expr`] — a typed expression tree evaluated against rows.
//! * [`exec`] — volcano-style iterators: scan, filter, project, sort,
//!   limit, aggregate.
//! * [`sql`] — a hand-written lexer/parser/binder for a practical SQL
//!   subset (`CREATE TABLE`, `CREATE INDEX`, `INSERT`, `SELECT`, `UPDATE`,
//!   `DELETE`).
//! * [`txn`] — coarse-grained transactions with undo-based rollback.
//! * [`snapshot`] — LSN-snapshot readers: a version-visibility index of
//!   committed page images, so N readers audit a consistent boundary while
//!   the single writer keeps committing (see
//!   [`db::SharedDatabase::begin_snapshot`]).
//! * [`db`] — the [`db::Database`] facade tying everything together.
//!
//! ## Quick example
//!
//! ```
//! use qpv_reldb::db::Database;
//! use qpv_reldb::value::Value;
//!
//! let mut db = Database::in_memory();
//! db.execute("CREATE TABLE people (id INT, name TEXT, weight INT)").unwrap();
//! db.execute("INSERT INTO people VALUES (1, 'Alice', 60), (2, 'Ted', 82)").unwrap();
//! let rows = db.query("SELECT name FROM people WHERE weight > 70").unwrap();
//! assert_eq!(rows.rows[0].values[0], Value::Text("Ted".into()));
//! ```

pub mod btree;
pub mod buffer;
pub mod catalog;
pub mod db;
pub mod disk;
pub mod encoding;
pub mod error;
pub mod exec;
pub mod expr;
pub mod fault;
pub mod heap;
pub mod page;
pub mod row;
pub mod schema;
pub mod snapshot;
pub mod sql;
pub mod txn;
pub mod types;
pub mod value;
pub mod wal;

pub use db::{Database, SharedDatabase};
pub use error::{DbError, DbResult};
pub use fault::{FaultInjector, FaultKind, FaultPlan, FaultStore, RetryPolicy};
pub use row::{Row, RowId};
pub use schema::{Column, Schema};
pub use snapshot::{SnapshotReader, VersionStore, VersionStoreConfig};
pub use types::DataType;
pub use value::Value;
