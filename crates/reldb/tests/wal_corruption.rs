//! Property suite: single-byte and single-bit corruption anywhere in a
//! recorded WAL.
//!
//! The WAL's frame format (`[len][crc32][payload]`) checksums every frame,
//! and replay stops at the first invalid frame. Flipping any one bit or
//! byte of the log therefore invalidates exactly the frame containing the
//! flip, and recovery must:
//!
//! * **never panic** — a panic anywhere fails the harness;
//! * **succeed on the committed prefix** (or refuse with
//!   `DbError::Corruption`) — the statements whose frames were fully
//!   synced *before* the corrupted offset are recovered exactly;
//! * **never apply a frame past the flip** — no statement at or after the
//!   corrupted frame leaves any trace.
//!
//! The recorded workload snapshots the WAL length after every statement,
//! so for a flip at byte offset `o` the first statement whose frames
//! extend past `o` is known exactly — recovery must land on precisely the
//! statements before it. (The vendored proptest is deterministic and does
//! not shrink, so every run checks the same seeded set of flips.)

use proptest::prelude::*;

use qpv_reldb::db::{wal_path, Database};
use qpv_reldb::DbError;

/// The recorded WAL image plus the oracle for judging recoveries.
struct Recorded {
    /// Raw bytes of the clean WAL (generation 0, never checkpointed).
    wal: Vec<u8>,
    /// `ends[s]` = WAL length (bytes) after statement `s` was acknowledged.
    ends: Vec<u64>,
}

const INSERTS: usize = 30;

fn record_wal(tag: &str) -> Recorded {
    let dir = std::env::temp_dir().join(format!(
        "qpv-walcorrupt-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut db = Database::open(&dir).unwrap();
    let wal_file = wal_path(&dir, 0);
    let mut ends = Vec::new();
    db.execute("CREATE TABLE t (id INT, v TEXT)").unwrap();
    ends.push(std::fs::metadata(&wal_file).unwrap().len());
    for i in 0..INSERTS {
        db.execute(&format!(
            "INSERT INTO t VALUES ({i}, 'row-{i}-{}')",
            "x".repeat(40)
        ))
        .unwrap();
        ends.push(std::fs::metadata(&wal_file).unwrap().len());
    }
    drop(db);
    let wal = std::fs::read(&wal_file).unwrap();
    assert_eq!(ends.last().copied(), Some(wal.len() as u64));
    std::fs::remove_dir_all(&dir).unwrap();
    Recorded { wal, ends }
}

/// Recover from a corrupted WAL image and check every invariant. `flip_at`
/// is the byte offset that was corrupted.
fn check_recovery(tag: &str, case: usize, corrupted: &[u8], flip_at: usize, ends: &[u64]) {
    // The first statement whose frames extend past the flipped offset:
    // that statement and everything after it must be gone; everything
    // before it must be recovered exactly.
    let broken = ends
        .iter()
        .position(|&end| end > flip_at as u64)
        .expect("flip offset is inside the log");

    let dir = std::env::temp_dir().join(format!(
        "qpv-walcorrupt-{tag}-{case}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(wal_path(&dir, 0), corrupted).unwrap();

    match Database::open(&dir) {
        Err(e) => assert!(
            matches!(e, DbError::Corruption(_)),
            "flip at {flip_at}: refusal must be Corruption, got {e}"
        ),
        Ok(mut db) => {
            if broken == 0 {
                // The DDL frame itself was hit: the table must not exist in
                // any form.
                assert!(
                    db.catalog().table("t").is_none(),
                    "flip at {flip_at}: table resurrected from a corrupt DDL frame"
                );
            } else {
                // Statements 1..broken are the inserts of ids 0..broken-1.
                let mut ids: Vec<i64> = db
                    .scan("t")
                    .unwrap_or_else(|e| panic!("flip at {flip_at}: scan failed: {e}"))
                    .into_iter()
                    .map(|(_, row)| row.values[0].as_int().unwrap())
                    .collect();
                ids.sort_unstable();
                let expect: Vec<i64> = (0..broken as i64 - 1).collect();
                assert_eq!(
                    ids, expect,
                    "flip at {flip_at} (statement {broken}): recovered rows are not \
                     exactly the committed prefix"
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

proptest! {
    /// Flip one whole byte (XOR 0xff) anywhere in the log.
    #[test]
    fn byte_flip_recovers_prefix_or_refuses(offset in 0usize..1_000_000, case in 0usize..1_000_000) {
        let recorded = record_wal("byte");
        let flip_at = offset % recorded.wal.len();
        let mut corrupted = recorded.wal.clone();
        corrupted[flip_at] ^= 0xff;
        check_recovery("byte", case, &corrupted, flip_at, &recorded.ends);
    }

    /// Flip one single bit anywhere in the log.
    #[test]
    fn bit_flip_recovers_prefix_or_refuses(
        offset in 0usize..1_000_000,
        bit in 0u32..8,
        case in 0usize..1_000_000,
    ) {
        let recorded = record_wal("bit");
        let flip_at = offset % recorded.wal.len();
        let mut corrupted = recorded.wal.clone();
        corrupted[flip_at] ^= 1u8 << bit;
        check_recovery("bit", case, &corrupted, flip_at, &recorded.ends);
    }
}
