//! Crash-torture suite: crash at *every* I/O op index and prove recovery.
//!
//! Methodology (the engine is its own model):
//!
//! 1. Run the scripted workload — DDL, autocommit DML, an explicit
//!    committed transaction, an explicit aborted transaction, a
//!    checkpoint, and post-checkpoint writes — on an in-memory twin,
//!    capturing the sorted table contents after every step
//!    (`model[k]` = state after `k` fully-acknowledged steps).
//! 2. Dry-run the workload on disk under a never-faulting injector to
//!    count the total number of I/O ops `N` (the buffer pool flushes in
//!    sorted page order, so the op stream is identical across runs).
//! 3. For every op index `i < N`, run the workload in a fresh directory
//!    under a plan that crash-stops (even `i`) or tears (odd `i`, seeded
//!    by `i`) at op `i`, stop at the first error, then reopen from the
//!    surviving bytes and assert the invariants:
//!
//!    * **committed-prefix durability** — the recovered state is exactly
//!      `model[acked]` or `model[acked + 1]` (the crashed step's commit
//!      frame may or may not have reached the medium in full);
//!    * **no resurrection** — the explicitly aborted transaction's row
//!      never appears (it is absent from every model state);
//!    * **idempotent recovery** — a second reopen observes the identical
//!      state;
//!    * **no panics** — corruption or loss surfaces as `Err`, never a
//!      panic (any panic fails the harness).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use qpv_reldb::db::Database;
use qpv_reldb::error::DbResult;
use qpv_reldb::fault::{FaultInjector, FaultKind, FaultPlan};

/// One workload step: atomic from the model's point of view (a crash
/// inside a step means the step was not acknowledged).
struct Step {
    label: &'static str,
    run: StepFn,
}

type StepFn = Box<dyn Fn(&mut Database) -> DbResult<()>>;

fn sql(label: &'static str, stmt: &'static str) -> Step {
    Step {
        label,
        run: Box::new(move |db| db.execute(stmt).map(|_| ())),
    }
}

/// A multi-statement step (explicit transactions): all statements run, in
/// order, as one acknowledgement unit.
fn batch(label: &'static str, stmts: &'static [&'static str]) -> Step {
    Step {
        label,
        run: Box::new(move |db| {
            for stmt in stmts {
                db.execute(stmt)?;
            }
            Ok(())
        }),
    }
}

fn checkpoint(label: &'static str) -> Step {
    Step {
        label,
        run: Box::new(|db| db.checkpoint()),
    }
}

/// The scripted workload. Pad text forces row batches across several
/// pages so the checkpoint flush contributes many distinct crash points.
fn workload() -> Vec<Step> {
    fn bulk_insert(first: i64, n: i64) -> String {
        let values: Vec<String> = (first..first + n)
            .map(|i| format!("({i}, 'p{i}-{}')", "x".repeat(200)))
            .collect();
        format!("INSERT INTO t VALUES {}", values.join(", "))
    }
    // `Box::leak` keeps `sql()` signatures simple; the strings live for
    // the whole test process.
    let ins1: &'static str = Box::leak(bulk_insert(0, 120).into_boxed_str());
    let ins2: &'static str = Box::leak(bulk_insert(120, 120).into_boxed_str());
    let ins3: &'static str = Box::leak(bulk_insert(240, 120).into_boxed_str());
    vec![
        sql("create-table", "CREATE TABLE t (id INT, v TEXT)"),
        sql("create-index", "CREATE INDEX t_id ON t (id)"),
        sql("insert-batch-1", ins1),
        sql("insert-batch-2", ins2),
        sql("update", "UPDATE t SET v = 'updated' WHERE id % 7 = 0"),
        sql("delete", "DELETE FROM t WHERE id % 5 = 4"),
        Step {
            label: "vacuum",
            run: Box::new(|db| db.vacuum("t").map(|_| ())),
        },
        batch(
            "committed-txn",
            &[
                "BEGIN",
                "INSERT INTO t VALUES (1000, 'committed-txn-row')",
                "UPDATE t SET v = 'txn-updated' WHERE id = 3",
                "COMMIT",
            ],
        ),
        batch(
            "aborted-txn",
            &[
                "BEGIN",
                "INSERT INTO t VALUES (2000, 'aborted-txn-row')",
                "ROLLBACK",
            ],
        ),
        sql("create-table-2", "CREATE TABLE u (k INT)"),
        sql("insert-u", "INSERT INTO u VALUES (1), (2), (3)"),
        checkpoint("checkpoint-1"),
        sql("insert-batch-3", ins3),
        sql(
            "post-ckpt-update",
            "UPDATE t SET v = 'late' WHERE id = 1000",
        ),
        sql("post-ckpt-delete", "DELETE FROM u WHERE k = 2"),
        checkpoint("checkpoint-2"),
        sql("post-ckpt2-insert", "INSERT INTO u VALUES (9)"),
    ]
}

/// Sorted, stringified contents of every table — recovery may relocate
/// rows, so only set-of-rows equality is meaningful.
type State = BTreeMap<String, Vec<String>>;

fn observe(db: &mut Database) -> State {
    let names: Vec<String> = db
        .catalog()
        .tables()
        .iter()
        .map(|t| t.name.clone())
        .collect();
    let mut state = State::new();
    for name in names {
        let mut rows: Vec<String> = db
            .scan(&name)
            .unwrap_or_else(|e| panic!("scan of {name} after recovery failed: {e}"))
            .into_iter()
            .map(|(_, row)| format!("{:?}", row.values))
            .collect();
        rows.sort_unstable();
        state.insert(name, rows);
    }
    state
}

/// `model[k]` = expected durable state after `k` acknowledged steps.
fn model_states() -> Vec<State> {
    let mut db = Database::in_memory();
    let mut states = vec![observe(&mut db)];
    for step in workload() {
        (step.run)(&mut db).unwrap_or_else(|e| panic!("model step {} failed: {e}", step.label));
        states.push(observe(&mut db));
    }
    states
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "qpv-torture-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Run the workload under `injector`, returning how many steps were
/// acknowledged (fully Ok) before the first error.
fn run_until_crash(dir: &Path, injector: FaultInjector) -> usize {
    let mut db = match Database::open_with_faults(dir, Some(injector)) {
        Ok(db) => db,
        Err(_) => return 0, // crashed inside the initial (empty) recovery
    };
    let mut acked = 0;
    for step in workload() {
        match (step.run)(&mut db) {
            Ok(()) => acked += 1,
            Err(_) => break, // the crash; everything after is unacknowledged
        }
    }
    acked
}

#[test]
fn crash_at_every_io_op_preserves_committed_prefix() {
    let model = model_states();
    // The aborted transaction's row must be invisible in every model
    // state — recovery comparing against these states therefore also
    // proves no resurrection of uncommitted work.
    for state in &model {
        for rows in state.values() {
            assert!(
                rows.iter().all(|r| !r.contains("aborted-txn-row")),
                "aborted work leaked into the model"
            );
        }
    }

    // Dry run: count the workload's total I/O ops.
    let dry_dir = temp_dir("dry");
    let dry = FaultInjector::new(FaultPlan::none());
    let acked = run_until_crash(&dry_dir, dry.clone());
    assert_eq!(acked, workload().len(), "dry run must not fail");
    let total_ops = dry.ops_seen();
    std::fs::remove_dir_all(&dry_dir).unwrap();
    assert!(
        total_ops >= 50,
        "workload too small: only {total_ops} crash points"
    );
    eprintln!("torture: enumerating {total_ops} crash points");

    for i in 0..total_ops {
        // Alternate pure crash-stops with torn writes for byte-level
        // diversity; torn plans derive their prefix length from seed `i`.
        let kind = if i % 2 == 0 {
            FaultKind::CrashStop
        } else {
            FaultKind::TornWrite
        };
        let dir = temp_dir(&format!("crash-{i}"));
        let injector = FaultInjector::new(FaultPlan::fail_at(i, kind).with_seed(i));
        let acked = run_until_crash(&dir, injector);

        // Reopen from the surviving bytes: recovery must succeed —
        // everything on disk is either fsynced state or a torn tail the
        // WAL discards by design.
        let mut db = Database::open(&dir)
            .unwrap_or_else(|e| panic!("crash at op {i}: recovery failed: {e}"));
        let observed = observe(&mut db);
        let exact = observed == model[acked];
        let next = acked + 1 < model.len() && observed == model[acked + 1];
        assert!(
            exact || next,
            "crash at op {i} ({kind:?}): recovered state matches neither \
             {acked} nor {} acknowledged steps",
            acked + 1
        );
        drop(db);

        // Idempotency: re-recovery observes the identical state.
        let mut db = Database::open(&dir)
            .unwrap_or_else(|e| panic!("crash at op {i}: second recovery failed: {e}"));
        assert_eq!(
            observe(&mut db),
            observed,
            "crash at op {i}: recovery is not idempotent"
        );
        drop(db);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// Multi-fault schedules in one plan: a flaky medium (periodic transients,
/// absorbed by the retry policy) that eventually crash-stops. The crash
/// lands at several points of the op stream; each run must still satisfy
/// the committed-prefix and idempotent-recovery invariants even though
/// retries have been shifting the op indices all along.
#[test]
fn transient_then_crash_in_a_single_run() {
    use qpv_reldb::fault::RetryPolicy;

    fn run_flaky(dir: &Path, injector: FaultInjector) -> usize {
        let mut db = match Database::open_with_faults(dir, Some(injector)) {
            Ok(db) => db,
            Err(_) => return 0,
        };
        db.set_retry_policy(RetryPolicy::standard());
        let mut acked = 0;
        for step in workload() {
            match (step.run)(&mut db) {
                Ok(()) => acked += 1,
                Err(_) => break,
            }
        }
        acked
    }

    let model = model_states();

    // Dry run under the transient-only plan: counts the op stream as the
    // retried workload actually emits it (each retry consumes an index).
    let dry_dir = temp_dir("flaky-dry");
    let dry = FaultInjector::new(FaultPlan::every_kth(5, FaultKind::Transient));
    let acked = run_flaky(&dry_dir, dry.clone());
    assert_eq!(acked, workload().len(), "retries must absorb transients");
    let total_ops = dry.ops_seen();
    std::fs::remove_dir_all(&dry_dir).unwrap();

    for c in [
        total_ops / 4,
        total_ops / 2,
        3 * total_ops / 4,
        total_ops - 1,
    ] {
        let dir = temp_dir(&format!("flaky-crash-{c}"));
        let plan =
            FaultPlan::every_kth(5, FaultKind::Transient).and_fail_at(c, FaultKind::CrashStop);
        let injector = FaultInjector::new(plan);
        let acked = run_flaky(&dir, injector.clone());
        assert!(injector.crashed(), "crash at op {c} never fired");
        assert!(acked < workload().len(), "crash at op {c} was absorbed");

        let mut db = Database::open(&dir)
            .unwrap_or_else(|e| panic!("flaky crash at op {c}: recovery failed: {e}"));
        let observed = observe(&mut db);
        let exact = observed == model[acked];
        let next = acked + 1 < model.len() && observed == model[acked + 1];
        assert!(
            exact || next,
            "flaky crash at op {c}: recovered state matches neither \
             {acked} nor {} acknowledged steps",
            acked + 1
        );
        drop(db);

        let mut db = Database::open(&dir)
            .unwrap_or_else(|e| panic!("flaky crash at op {c}: second recovery failed: {e}"));
        assert_eq!(
            observe(&mut db),
            observed,
            "flaky crash at op {c}: recovery is not idempotent"
        );
        drop(db);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn transient_faults_are_absorbed_by_the_retry_policy() {
    use qpv_reldb::fault::RetryPolicy;
    let dir = temp_dir("transient");
    // Every 3rd I/O op fails transiently; with retries enabled the whole
    // workload must still complete and match the model exactly.
    let injector = FaultInjector::new(FaultPlan::every_kth(3, FaultKind::Transient));
    let mut db = Database::open_with_faults(&dir, Some(injector)).unwrap();
    db.set_retry_policy(RetryPolicy::standard());
    for step in workload() {
        (step.run)(&mut db).unwrap_or_else(|e| panic!("step {} failed: {e}", step.label));
    }
    let observed = observe(&mut db);
    drop(db);
    let model = model_states();
    assert_eq!(observed, *model.last().unwrap());
    // And the state is durable: a clean reopen sees the same rows.
    let mut db = Database::open(&dir).unwrap();
    assert_eq!(observe(&mut db), *model.last().unwrap());
    drop(db);
    std::fs::remove_dir_all(&dir).unwrap();
}
