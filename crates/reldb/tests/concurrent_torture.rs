//! Concurrent-torture suite: snapshot readers against a live writer, under
//! crashes and injected faults, in every observable interleaving.
//!
//! ## Why boundary-granularity enumeration is exhaustive
//!
//! A snapshot's reads resolve against immutable (`Arc`-shared) page images
//! published at commit boundaries; between two boundaries there is nothing
//! a reader could observe changing. An interleaving is therefore fully
//! characterised by *(boundary the snapshot was cut at, boundary the writer
//! has reached when the read executes)* — so running the scripted workload
//! once, cutting a snapshot after every step, and re-reading every open
//! snapshot after every later step enumerates the complete interleaving
//! space at the only granularity at which schedules differ. The real-thread
//! stress test then exercises the same invariants under genuine preemption.
//!
//! ## Invariants
//!
//! * **boundary consistency** — a snapshot cut after `k` acknowledged
//!   steps reads exactly the serial oracle's state after `k` steps
//!   (byte-identical, forever, no matter how far the writer advances);
//! * **crash safety** — with a crash or torn write injected at *every* I/O
//!   op index (version-store ops included) while snapshots are open:
//!   recovery restores the committed prefix, re-recovery is idempotent,
//!   and every open snapshot either still serves its boundary or fails
//!   with a typed error — never a panic, never a silently wrong row;
//! * **typed reclamation** — a stalled reader whose history is reclaimed
//!   gets `DbError::SnapshotTooOld` (with both LSNs populated) and
//!   recovers by cutting a fresh snapshot.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use qpv_reldb::db::Database;
use qpv_reldb::error::{DbError, DbResult};
use qpv_reldb::fault::{FaultInjector, FaultKind, FaultPlan};
use qpv_reldb::snapshot::{SnapshotReader, VersionStoreConfig};
use qpv_reldb::SharedDatabase;

/// One workload step: atomic from the model's point of view.
struct Step {
    label: &'static str,
    run: StepFn,
}

type StepFn = Box<dyn Fn(&mut Database) -> DbResult<()>>;

fn sql(label: &'static str, stmt: &'static str) -> Step {
    Step {
        label,
        run: Box::new(move |db| db.execute(stmt).map(|_| ())),
    }
}

fn batch(label: &'static str, stmts: &'static [&'static str]) -> Step {
    Step {
        label,
        run: Box::new(move |db| {
            for stmt in stmts {
                db.execute(stmt)?;
            }
            Ok(())
        }),
    }
}

/// The scripted workload: DDL, multi-page DML, a committed and an aborted
/// explicit transaction, vacuum, a checkpoint (which swaps the WAL and
/// must carry the LSN clock), and post-checkpoint writes.
fn workload() -> Vec<Step> {
    fn bulk_insert(first: i64, n: i64) -> String {
        let values: Vec<String> = (first..first + n)
            .map(|i| format!("({i}, 'p{i}-{}')", "x".repeat(120)))
            .collect();
        format!("INSERT INTO t VALUES {}", values.join(", "))
    }
    let ins1: &'static str = Box::leak(bulk_insert(0, 60).into_boxed_str());
    let ins2: &'static str = Box::leak(bulk_insert(60, 60).into_boxed_str());
    vec![
        sql("create-table", "CREATE TABLE t (id INT, v TEXT)"),
        sql("create-index", "CREATE INDEX t_id ON t (id)"),
        sql("insert-batch-1", ins1),
        sql("update", "UPDATE t SET v = 'updated' WHERE id % 7 = 0"),
        sql("delete", "DELETE FROM t WHERE id % 5 = 4"),
        batch(
            "committed-txn",
            &[
                "BEGIN",
                "INSERT INTO t VALUES (1000, 'committed-txn-row')",
                "UPDATE t SET v = 'txn-updated' WHERE id = 3",
                "COMMIT",
            ],
        ),
        batch(
            "aborted-txn",
            &[
                "BEGIN",
                "INSERT INTO t VALUES (2000, 'aborted-txn-row')",
                "ROLLBACK",
            ],
        ),
        Step {
            label: "vacuum",
            run: Box::new(|db| db.vacuum("t").map(|_| ())),
        },
        sql("create-table-2", "CREATE TABLE u (k INT)"),
        sql("insert-u", "INSERT INTO u VALUES (1), (2), (3)"),
        Step {
            label: "checkpoint",
            run: Box::new(|db| db.checkpoint()),
        },
        sql("insert-batch-2", ins2),
        sql("post-ckpt-delete", "DELETE FROM u WHERE k = 2"),
    ]
}

/// Sorted, stringified contents of every table — vacuum and recovery may
/// relocate rows, so only set-of-rows equality is meaningful.
type State = BTreeMap<String, Vec<String>>;

fn observe(db: &mut Database) -> State {
    let names: Vec<String> = db
        .catalog()
        .tables()
        .iter()
        .map(|t| t.name.clone())
        .collect();
    let mut state = State::new();
    for name in names {
        let mut rows: Vec<String> = db
            .scan(&name)
            .unwrap_or_else(|e| panic!("writer scan of {name} failed: {e}"))
            .into_iter()
            .map(|(_, row)| format!("{:?}", row.values))
            .collect();
        rows.sort_unstable();
        state.insert(name, rows);
    }
    state
}

/// The same observation through a snapshot: must be byte-identical to the
/// writer's own view at the snapshot's boundary.
fn observe_snapshot(snap: &SnapshotReader) -> DbResult<State> {
    let mut state = State::new();
    for meta in snap.catalog().tables() {
        let mut rows: Vec<String> = snap
            .scan(&meta.name)?
            .into_iter()
            .map(|(_, row)| format!("{:?}", row.values))
            .collect();
        rows.sort_unstable();
        state.insert(meta.name.clone(), rows);
    }
    Ok(state)
}

/// `model[k]` = serial-oracle state after `k` acknowledged steps.
fn model_states() -> Vec<State> {
    let mut db = Database::in_memory();
    let mut states = vec![observe(&mut db)];
    for step in workload() {
        (step.run)(&mut db).unwrap_or_else(|e| panic!("model step {} failed: {e}", step.label));
        states.push(observe(&mut db));
    }
    states
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "qpv-ctorture-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Deterministic enumeration of every observable reader/writer
/// interleaving (see the module docs): cut a snapshot after each step,
/// then after *every* later step re-read *every* open snapshot and demand
/// byte-identity with the serial oracle at its own boundary.
#[test]
fn every_snapshot_boundary_matches_the_serial_oracle_forever() {
    let model = model_states();
    let mut db = Database::in_memory();
    // Boundary 0: the empty database.
    let mut snaps: Vec<(usize, SnapshotReader)> = vec![(0, db.begin_snapshot().unwrap())];
    for (k, step) in workload().into_iter().enumerate() {
        (step.run)(&mut db).unwrap_or_else(|e| panic!("step {} failed: {e}", step.label));
        snaps.push((k + 1, db.begin_snapshot().unwrap()));
        // Every open snapshot, including ones cut many boundaries ago,
        // still reads exactly its own boundary.
        for (cut_at, snap) in &snaps {
            let got = observe_snapshot(snap)
                .unwrap_or_else(|e| panic!("snapshot at boundary {cut_at} failed: {e}"));
            assert_eq!(
                got,
                model[*cut_at],
                "after step {}, snapshot cut at boundary {cut_at} diverged from the oracle",
                k + 1
            );
        }
        // And the writer's own view tracks the newest model state.
        assert_eq!(
            observe(&mut db),
            model[k + 1],
            "writer diverged at step {k}"
        );
    }
    // Dropping snapshots out of order exercises release/prune paths.
    while snaps.len() > 1 {
        snaps.swap_remove(snaps.len() / 2);
        let (cut_at, snap) = &snaps[0];
        assert_eq!(observe_snapshot(snap).unwrap(), model[*cut_at]);
    }
}

/// Run the workload under `injector` with snapshot readers active: a
/// snapshot is cut after every acknowledged step and every open snapshot
/// is re-read as the workload advances. Returns the acknowledged count
/// and the surviving snapshots with the boundary each was cut at.
fn run_with_readers(dir: &Path, injector: FaultInjector) -> (usize, Vec<(usize, SnapshotReader)>) {
    let mut db = match Database::open_with_faults(dir, Some(injector)) {
        Ok(db) => db,
        Err(_) => return (0, Vec::new()),
    };
    let mut snaps: Vec<(usize, SnapshotReader)> = Vec::new();
    if let Ok(snap) = db.begin_snapshot() {
        snaps.push((0, snap));
    }
    let mut acked = 0;
    for step in workload() {
        match (step.run)(&mut db) {
            Ok(()) => acked += 1,
            Err(_) => break,
        }
        // Best-effort reader activity: cutting or reading a snapshot may
        // hit an injected fault (Err), which must stay an Err — a panic
        // anywhere fails the harness.
        if let Ok(snap) = db.begin_snapshot() {
            snaps.push((acked, snap));
        }
        for (_, snap) in &snaps {
            let _ = observe_snapshot(snap);
        }
    }
    (acked, snaps)
}

/// Crash (even indices) or tear (odd indices, seeded) at every I/O op of
/// the workload-with-readers — version-store publishes, reads, and prunes
/// are failpoints in the same stream — then prove committed-prefix
/// recovery, idempotent re-recovery, and typed (never wrong, never
/// panicking) behaviour of every snapshot that survived the crash.
#[test]
fn crash_at_every_io_op_with_readers_active() {
    let model = model_states();

    // Dry-run to count the op stream, readers included (single-threaded
    // and schedule-free, so the stream is identical across runs).
    let dry_dir = temp_dir("dry");
    let dry = FaultInjector::new(FaultPlan::none());
    let (acked, snaps) = run_with_readers(&dry_dir, dry.clone());
    assert_eq!(acked, workload().len(), "dry run must not fail");
    // In the clean run every snapshot matches its boundary at the end.
    for (cut_at, snap) in &snaps {
        assert_eq!(observe_snapshot(snap).unwrap(), model[*cut_at]);
    }
    drop(snaps);
    let total_ops = dry.ops_seen();
    std::fs::remove_dir_all(&dry_dir).unwrap();
    assert!(
        total_ops >= 60,
        "workload too small: only {total_ops} crash points"
    );
    eprintln!("concurrent torture: enumerating {total_ops} crash points");

    for i in 0..total_ops {
        let kind = if i % 2 == 0 {
            FaultKind::CrashStop
        } else {
            FaultKind::TornWrite
        };
        let dir = temp_dir(&format!("crash-{i}"));
        let injector = FaultInjector::new(FaultPlan::fail_at(i, kind).with_seed(i));
        let (acked, snaps) = run_with_readers(&dir, injector);

        // Graceful degradation: every surviving snapshot either still
        // serves its exact boundary or fails with a typed error. Matching
        // some *other* boundary's state would be a silently wrong audit.
        for (cut_at, snap) in &snaps {
            // Errors (SnapshotTooOld or a wedged-store read) are tolerated;
            // only a *successful* read of the wrong state is a violation.
            if let Ok(got) = observe_snapshot(snap) {
                assert_eq!(
                    got, model[*cut_at],
                    "crash at op {i} ({kind:?}): snapshot at boundary {cut_at} \
                     returned a state that is not its boundary"
                );
            }
        }
        drop(snaps);

        // Committed-prefix recovery from the surviving bytes.
        let mut db = Database::open(&dir)
            .unwrap_or_else(|e| panic!("crash at op {i}: recovery failed: {e}"));
        let observed = observe(&mut db);
        let exact = observed == model[acked];
        let next = acked + 1 < model.len() && observed == model[acked + 1];
        assert!(
            exact || next,
            "crash at op {i} ({kind:?}): recovered state matches neither \
             {acked} nor {} acknowledged steps",
            acked + 1
        );
        // Snapshots work on the recovered database too.
        let snap = db.begin_snapshot().unwrap();
        assert_eq!(observe_snapshot(&snap).unwrap(), observed);
        drop(snap);
        drop(db);

        // Idempotency: re-recovery observes the identical state.
        let mut db = Database::open(&dir)
            .unwrap_or_else(|e| panic!("crash at op {i}: second recovery failed: {e}"));
        assert_eq!(
            observe(&mut db),
            observed,
            "crash at op {i}: recovery is not idempotent"
        );
        drop(db);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// A stalled reader pinning history past the retention budget is doomed
/// with the *typed* `SnapshotTooOld` — both LSNs populated, no panic, no
/// stale rows — and recovers by cutting a fresh snapshot.
#[test]
fn stalled_reader_gets_typed_snapshot_too_old_and_recovers() {
    let mut db = Database::in_memory();
    db.set_snapshot_config(VersionStoreConfig {
        // Two historical pages: a couple of churning commits overflow it.
        max_retained_bytes: 2 * 4096,
    });
    db.execute("CREATE TABLE t (id INT, v TEXT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        .unwrap();
    let stalled = db.begin_snapshot().unwrap();
    assert_eq!(stalled.count("t").unwrap(), 2);

    // Churn the same rows: every commit republishes the same page, so
    // history grows by a page per commit until the budget trips.
    for round in 0..12 {
        db.execute(&format!("UPDATE t SET v = 'r{round}' WHERE id = 1"))
            .unwrap();
    }

    let err = stalled.scan("t").unwrap_err();
    match err {
        DbError::SnapshotTooOld {
            snapshot_lsn,
            oldest_retained_lsn,
        } => {
            assert!(
                snapshot_lsn < oldest_retained_lsn,
                "doomed snapshot {snapshot_lsn} must predate the floor {oldest_retained_lsn}"
            );
            assert_eq!(snapshot_lsn, stalled.lsn());
        }
        other => panic!("expected SnapshotTooOld, got {other}"),
    }
    // Every subsequent read keeps failing the same typed way.
    assert!(matches!(
        stalled.get("t", qpv_reldb::RowId::new(1, 0)),
        Err(DbError::SnapshotTooOld { .. })
    ));
    drop(stalled);

    // Recovery: a fresh snapshot serves the current boundary.
    let fresh = db.begin_snapshot().unwrap();
    let rows = fresh.scan("t").unwrap();
    assert_eq!(rows.len(), 2);
    assert!(rows
        .iter()
        .any(|(_, r)| r.values[1].as_text() == Some("r11")));
}

/// Real threads: one writer committing sequential rows, three snapshot
/// readers cutting and scanning concurrently. Every scanned state must be
/// a committed prefix (ids exactly `0..=m`, contiguous), and re-scanning
/// the same snapshot must be bit-stable — under genuine preemption, on
/// however many cores the host gives us.
#[test]
fn threaded_readers_always_observe_a_committed_prefix() {
    const WRITES: i64 = 250;
    let mut db = Database::in_memory();
    db.execute("CREATE TABLE s (id INT)").unwrap();
    let shared = SharedDatabase::new(db);
    // Attach the version store before spawning so readers always find
    // the table.
    drop(shared.begin_snapshot().unwrap());

    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..3)
        .map(|r| {
            let shared = shared.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut iterations = 0u64;
                let mut last_seen = -1i64;
                loop {
                    let finished = done.load(Ordering::Acquire);
                    let snap = shared.begin_snapshot().unwrap();
                    let ids = |rows: Vec<(qpv_reldb::RowId, qpv_reldb::Row)>| {
                        let mut ids: Vec<i64> = rows
                            .into_iter()
                            .map(|(_, row)| row.values[0].as_int().unwrap())
                            .collect();
                        ids.sort_unstable();
                        ids
                    };
                    let first = ids(snap.scan("s").unwrap());
                    // Committed prefix: exactly 0..=m with no holes.
                    for (expect, got) in first.iter().enumerate() {
                        assert_eq!(
                            *got, expect as i64,
                            "reader {r}: snapshot saw a torn prefix {first:?}"
                        );
                    }
                    // Monotone across successive snapshots on one thread.
                    let m = first.len() as i64 - 1;
                    assert!(m >= last_seen, "reader {r}: boundary went backwards");
                    last_seen = m;
                    // Bit-stable on re-read while the writer races ahead.
                    assert_eq!(first, ids(snap.scan("s").unwrap()), "reader {r}");
                    iterations += 1;
                    if finished {
                        break;
                    }
                }
                (iterations, last_seen)
            })
        })
        .collect();

    for i in 0..WRITES {
        shared
            .execute(&format!("INSERT INTO s VALUES ({i})"))
            .unwrap();
    }
    done.store(true, Ordering::Release);

    for handle in readers {
        let (iterations, last_seen) = handle.join().expect("reader panicked");
        assert!(iterations > 0);
        // The final post-flag snapshot sees the completed workload.
        assert_eq!(last_seen, WRITES - 1);
    }
    // The writer was never blocked into an error by readers.
    let rs = shared.query("SELECT COUNT(*) FROM s").unwrap();
    assert_eq!(rs.rows[0].values[0], qpv_reldb::Value::Int(WRITES));
}
