//! Randomised SQL workload against a shadow model.
//!
//! Applies random insert/update/delete batches through the SQL layer and
//! checks, after every batch, that a full `SELECT` agrees with a plain
//! in-memory model of the table — catching cross-layer bugs (binder ×
//! executor × heap × page × index) that unit tests of each layer miss.

use proptest::prelude::*;
use qpv_reldb::{Database, Value};
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert { id: i64, score: i64 },
    UpdateScore { id: i64, score: i64 },
    Delete { id: i64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..50, -100i64..100).prop_map(|(id, score)| Op::Insert { id, score }),
        (0i64..50, -100i64..100).prop_map(|(id, score)| Op::UpdateScore { id, score }),
        (0i64..50).prop_map(|id| Op::Delete { id }),
    ]
}

/// Multiset model: id → scores (inserts may duplicate ids).
type Model = BTreeMap<i64, Vec<i64>>;

fn check_against_model(db: &mut Database, model: &Model) {
    let rs = db
        .query("SELECT id, score FROM t ORDER BY id, score")
        .unwrap();
    let mut expected: Vec<(i64, i64)> = model
        .iter()
        .flat_map(|(id, scores)| scores.iter().map(move |s| (*id, *s)))
        .collect();
    expected.sort();
    let actual: Vec<(i64, i64)> = rs
        .rows
        .iter()
        .map(|r| (r.values[0].as_int().unwrap(), r.values[1].as_int().unwrap()))
        .collect();
    assert_eq!(actual, expected);

    // Aggregates agree too.
    let count = db.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(count.rows[0].values[0], Value::Int(expected.len() as i64));
    if !expected.is_empty() {
        let max = db.query("SELECT MAX(score) FROM t").unwrap();
        assert_eq!(
            max.rows[0].values[0],
            Value::Int(expected.iter().map(|(_, s)| *s).max().unwrap())
        );
    }
    // The index agrees with the scan for a point query.
    if let Some((id, _)) = expected.first() {
        let by_index = db
            .query(&format!("SELECT COUNT(*) FROM t WHERE id = {id}"))
            .unwrap();
        let want = model.get(id).map(Vec::len).unwrap_or(0) as i64;
        assert_eq!(by_index.rows[0].values[0], Value::Int(want));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn random_sql_workload_matches_shadow_model(
        ops in proptest::collection::vec(arb_op(), 1..80)
    ) {
        let mut db = Database::in_memory();
        db.execute("CREATE TABLE t (id INT, score INT)").unwrap();
        db.execute("CREATE INDEX t_id ON t (id)").unwrap();
        let mut model: Model = BTreeMap::new();

        for op in ops {
            match op {
                Op::Insert { id, score } => {
                    db.execute(&format!("INSERT INTO t VALUES ({id}, {score})")).unwrap();
                    model.entry(id).or_default().push(score);
                }
                Op::UpdateScore { id, score } => {
                    let n = db
                        .execute(&format!("UPDATE t SET score = {score} WHERE id = {id}"))
                        .unwrap()
                        .rows_affected;
                    let entry = model.get_mut(&id);
                    let expected = entry.as_ref().map(|v| v.len()).unwrap_or(0);
                    prop_assert_eq!(n, expected);
                    if let Some(scores) = entry {
                        for s in scores.iter_mut() {
                            *s = score;
                        }
                    }
                }
                Op::Delete { id } => {
                    let n = db
                        .execute(&format!("DELETE FROM t WHERE id = {id}"))
                        .unwrap()
                        .rows_affected;
                    let expected = model.remove(&id).map(|v| v.len()).unwrap_or(0);
                    prop_assert_eq!(n, expected);
                }
            }
            check_against_model(&mut db, &model);
        }
    }

    /// The same workload inside one explicit transaction, rolled back,
    /// must leave the table exactly as it started.
    #[test]
    fn rollback_undoes_arbitrary_workloads(
        ops in proptest::collection::vec(arb_op(), 1..40)
    ) {
        let mut db = Database::in_memory();
        db.execute("CREATE TABLE t (id INT, score INT)").unwrap();
        db.execute("CREATE INDEX t_id ON t (id)").unwrap();
        db.execute("INSERT INTO t VALUES (100, 1), (101, 2), (102, 3)").unwrap();
        let before = db.query("SELECT id, score FROM t ORDER BY id, score").unwrap();

        db.execute("BEGIN").unwrap();
        for op in ops {
            match op {
                Op::Insert { id, score } => {
                    db.execute(&format!("INSERT INTO t VALUES ({id}, {score})")).unwrap();
                }
                Op::UpdateScore { id, score } => {
                    db.execute(&format!("UPDATE t SET score = {score} WHERE id = {id}")).unwrap();
                }
                Op::Delete { id } => {
                    db.execute(&format!("DELETE FROM t WHERE id = {id}")).unwrap();
                }
            }
        }
        db.execute("ROLLBACK").unwrap();
        let after = db.query("SELECT id, score FROM t ORDER BY id, score").unwrap();
        prop_assert_eq!(before, after);
        // Index is restored too.
        let rs = db.query("SELECT COUNT(*) FROM t WHERE id = 101").unwrap();
        prop_assert_eq!(rs.rows[0].values[0].clone(), Value::Int(1));
    }
}
